#include "video/serialize.h"

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/faultinject.h"
#include "common/trace.h"
#include "video/container.h"

namespace bb::video {

namespace {

void PutU32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes = {
      static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
      static_cast<char>((v >> 16) & 0xFF),
      static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes.data(), 4);
}

std::optional<std::uint32_t> GetU32(std::istream& in) {
  std::array<unsigned char, 4> bytes{};
  in.read(reinterpret_cast<char*>(bytes.data()), 4);
  if (in.gcount() != 4) return std::nullopt;
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

Status HeaderError(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

// "write failed at byte N: <OS reason>" - the write path names where it
// stopped just like the readers name what they rejected.
Status WriteIoError(const std::string& what, std::uint64_t at_byte) {
  const int err = errno;
  std::string message = what + " at byte " + std::to_string(at_byte);
  if (err != 0) {
    message += ": ";
    message += std::strerror(err);
  }
  return Status(StatusCode::kIoError, message);
}

}  // namespace

Status WriteBbv(const VideoStream& video, const std::string& path) {
  const auto context = [&path](Status status) {
    return status.WithContext("write " + path);
  };
  // Refuse to write a header the reader would reject (or that would wrap
  // the u32 header fields) instead of silently truncating the values.
  if (const Status valid =
          ValidateStreamForWrite(video.width(), video.height(),
                                 video.frame_count(), video.fps());
      !valid.ok()) {
    return valid.WithContext("write " + path);
  }

  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) return context(WriteIoError("cannot open for writing", 0));
  out.write(kBbv1Magic, 4);
  PutU32(out, static_cast<std::uint32_t>(video.width()));
  PutU32(out, static_cast<std::uint32_t>(video.height()));
  PutU32(out, static_cast<std::uint32_t>(video.frame_count()));
  PutU32(out, static_cast<std::uint32_t>(std::lround(video.fps() * 1000.0)));
  if (!out) return context(WriteIoError("write failed (header)", 0));

  std::vector<char> row;
  std::uint64_t written = static_cast<std::uint64_t>(kBbvHeaderBytes);
  for (int i = 0; i < video.frame_count(); ++i) {
    const imaging::Image& f = video.frame(i);
    row.clear();
    row.reserve(f.pixel_count() * 3);
    // bblint: allow(no-per-pixel-loop) -- .bbv codec; byte order is the file format's, not a kernel shape
    for (const imaging::Rgb8& p : f.pixels()) {
      row.push_back(static_cast<char>(p.r));
      row.push_back(static_cast<char>(p.g));
      row.push_back(static_cast<char>(p.b));
    }
    errno = 0;
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
    if (!out) {
      return context(WriteIoError(
          "write failed (frame " + std::to_string(i) + ")", written));
    }
    written += row.size();
  }
  out.flush();
  if (!out) return context(WriteIoError("flush failed", written));
  return OkStatus();
}

Result<VideoStream> LoadBbv(const std::string& path) {
  auto source = BbvFileSource::Open(path);
  if (!source.ok()) return source.status();
  VideoStream video(source->info().fps);
  imaging::Image frame;
  for (;;) {
    const FramePull pull = source->Pull(frame);
    if (pull.status == PullStatus::kEnd) break;
    if (pull.status == PullStatus::kBad) {
      return pull.error.WithContext("load " + path);
    }
    video.AddFrame(std::move(frame));
  }
  if (video.frame_count() != source->info().frame_count) {
    return Status(StatusCode::kDataLoss,
                  "stream ended after " +
                      std::to_string(video.frame_count()) + " of " +
                      std::to_string(source->info().frame_count) +
                      " declared frames")
        .WithContext("load " + path);
  }
  return video;
}

std::optional<VideoStream> ReadBbv(const std::string& path) {
  auto loaded = LoadBbv(path);
  if (!loaded.ok()) return std::nullopt;
  return std::move(loaded).value();
}

Result<BbvFileSource> BbvFileSource::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open file")
        .WithContext("open " + path);
  }
  const auto reject = [&path](const Status& status) {
    return status.WithContext("open " + path);
  };
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() != 4) {
    return reject(
        HeaderError("truncated header: file shorter than the 4-byte magic"));
  }

  if (std::memcmp(magic, kBbv2Magic, 4) == 0) {
    // Container v2: the checksummed footer index carries the whole frame
    // table; all validation lives in container.h.
    in.clear();
    in.seekg(0, std::ios::end);
    const std::streamoff file_size = in.tellg();
    auto layout =
        ReadBbv2Layout(in, static_cast<std::uint64_t>(file_size), path);
    if (!layout.ok()) return layout.status();
    BbvFileSource source;
    source.info_ = layout->info;
    source.version_ = 2;
    source.buf_.resize(static_cast<std::size_t>(layout->frame_bytes()));
    source.blob_offsets_ = std::move(layout->blob_offsets);
    source.blob_hashes_ = std::move(layout->blob_hashes);
    source.frame_blobs_ = std::move(layout->frame_blobs);
    source.blob_verified_.assign(source.blob_offsets_.size(), 0);
    // The layout parse ends at the footer; position the stream back at the
    // payload explicitly so the first Pull() needs no Reset().
    in.clear();
    in.seekg(kBbvHeaderBytes, std::ios::beg);
    source.in_ = std::move(in);
    return Result<BbvFileSource>(std::move(source));
  }

  if (std::memcmp(magic, kBbv1Magic, 4) != 0) {
    return reject(HeaderError("bad magic at byte 0 (want BBV1 or BBV2)"));
  }
  const auto width = GetU32(in);
  const auto height = GetU32(in);
  const auto frames = GetU32(in);
  const auto fps_mhz = GetU32(in);
  if (!width || !height || !frames || !fps_mhz) {
    return reject(
        HeaderError("truncated header: fewer than 20 bytes before payload"));
  }
  if (*fps_mhz == 0) {
    return reject(HeaderError("invalid header: fps is zero (bytes 16-19)"));
  }
  // An empty stream legitimately has zero dimensions.
  if (*frames > 0 && (*width == 0 || *height == 0)) {
    return reject(HeaderError(
        "invalid header: zero frame dimensions with a nonzero frame count "
        "(bytes 4-11)"));
  }
  // Refuse absurd headers rather than attempting a huge allocation.
  if (*width > static_cast<std::uint32_t>(kMaxBbvDimension) ||
      *height > static_cast<std::uint32_t>(kMaxBbvDimension) ||
      *frames > static_cast<std::uint32_t>(kMaxBbvFrameCount)) {
    return reject(HeaderError(
        "implausible header: dimensions or frame count exceed format limits "
        "(bytes 4-15)"));
  }
  // Reject truncated payloads upfront: the header-declared frame count is
  // part of the StreamInfo contract, so the bytes must all be present.
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(*width) * *height * 3;
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  if (file_size < kBbvHeaderBytes ||
      static_cast<std::uint64_t>(file_size - kBbvHeaderBytes) <
          frame_bytes * *frames) {
    const std::uint64_t have =
        file_size < kBbvHeaderBytes
            ? 0
            : static_cast<std::uint64_t>(file_size - kBbvHeaderBytes);
    return reject(HeaderError(
        "truncated payload: " + std::to_string(have) +
        " bytes after the header, " + std::to_string(frame_bytes * *frames) +
        " declared (payload starts at byte 20)"));
  }
  // The size probe moved the read position to end-of-file; seek back to
  // the payload explicitly (not via Reset()) so the first Pull() cannot
  // depend on DoReset() recovering the stream state.
  in.clear();
  in.seekg(kBbvHeaderBytes, std::ios::beg);

  BbvFileSource source;
  source.in_ = std::move(in);
  source.info_ =
      StreamInfo{static_cast<int>(*width), static_cast<int>(*height),
                 static_cast<int>(*frames), *fps_mhz / 1000.0};
  source.buf_.resize(static_cast<std::size_t>(frame_bytes));
  return Result<BbvFileSource>(std::move(source));
}

std::uint64_t BbvFileSource::FrameOffset(int index) const {
  if (version_ == 2) {
    return blob_offsets_[frame_blobs_[static_cast<std::size_t>(index)]];
  }
  return static_cast<std::uint64_t>(kBbvHeaderBytes) +
         static_cast<std::uint64_t>(index) * buf_.size();
}

void BbvFileSource::DoReset() { next_ = 0; }

Status BbvFileSource::DoSeek(int frame) {
  next_ = frame;
  return OkStatus();
}

FramePull BbvFileSource::DoPull(imaging::Image& frame) {
  if (next_ >= info_.frame_count) return FramePull{};
  const int index = next_;
  ++next_;
  const std::uint64_t frame_off = FrameOffset(index);

  // Every pull addresses its frame by absolute offset, so one unreadable
  // frame never bleeds into the next and Seek() costs nothing extra.
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(frame_off), std::ios::beg);
  in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const std::size_t got = static_cast<std::size_t>(in_.gcount());
  if (got != buf_.size()) {
    // Open() verified the payload length, so a short read means the file
    // changed underneath us (or the medium failed).
    return FramePull{
        PullStatus::kBad,
        Status(StatusCode::kDataLoss,
               "short read: got " + std::to_string(got) + " of " +
                   std::to_string(buf_.size()) + " bytes at byte " +
                   std::to_string(frame_off))
            .WithContext("frame " + std::to_string(index))};
  }
  if (faultinject::Enabled()) {
    if (const auto kind = faultinject::At("read", index)) {
      if (trace::Enabled()) trace::AddCounter("fault.injected.read", 1);
      const char* what =
          *kind == faultinject::FaultKind::kTruncate
              ? "short read (injected)"
              : *kind == faultinject::FaultKind::kCorrupt
                    ? "payload integrity check failed (injected)"
                    : "read failed (injected)";
      return FramePull{
          PullStatus::kBad,
          Status(*kind == faultinject::FaultKind::kFail
                     ? StatusCode::kIoError
                     : StatusCode::kDataLoss,
                 std::string(what) + " at byte " + std::to_string(frame_off))
              .WithContext("frame " + std::to_string(index))};
    }
  }
  if (version_ == 2) {
    // First decode of a blob verifies its footer-declared content hash;
    // a corrupted blob marks every frame that references it bad, on every
    // pass, so quarantine decisions stay stable.
    const std::uint32_t blob = frame_blobs_[static_cast<std::size_t>(index)];
    if (blob_verified_[blob] == 0) {
      if (Fnv1a64(buf_.data(), buf_.size()) != blob_hashes_[blob]) {
        return FramePull{
            PullStatus::kBad,
            Status(StatusCode::kDataLoss,
                   "blob " + std::to_string(blob) +
                       " content hash mismatch at byte " +
                       std::to_string(frame_off) + " (file corrupted)")
                .WithContext("frame " + std::to_string(index))};
      }
      blob_verified_[blob] = 1;
    }
  }
  if (frame.width() != info_.width || frame.height() != info_.height) {
    frame = imaging::Image(info_.width, info_.height);
  }
  auto px = frame.pixels();
  // bblint: allow(no-per-pixel-loop) -- .bbv codec; byte order is the file format's, not a kernel shape
  for (std::size_t k = 0; k < px.size(); ++k) {
    px[k] = {static_cast<std::uint8_t>(buf_[3 * k]),
             static_cast<std::uint8_t>(buf_[3 * k + 1]),
             static_cast<std::uint8_t>(buf_[3 * k + 2])};
  }
  return FramePull{PullStatus::kFrame, OkStatus()};
}

}  // namespace bb::video
