#include "video/serialize.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace bb::video {

namespace {

constexpr char kMagic[4] = {'B', 'B', 'V', '1'};

void PutU32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes = {
      static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
      static_cast<char>((v >> 16) & 0xFF),
      static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes.data(), 4);
}

std::optional<std::uint32_t> GetU32(std::istream& in) {
  std::array<unsigned char, 4> bytes{};
  in.read(reinterpret_cast<char*>(bytes.data()), 4);
  if (in.gcount() != 4) return std::nullopt;
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

}  // namespace

bool WriteBbv(const VideoStream& video, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, 4);
  PutU32(out, static_cast<std::uint32_t>(video.width()));
  PutU32(out, static_cast<std::uint32_t>(video.height()));
  PutU32(out, static_cast<std::uint32_t>(video.frame_count()));
  PutU32(out, static_cast<std::uint32_t>(std::lround(video.fps() * 1000.0)));

  std::vector<char> row;
  for (int i = 0; i < video.frame_count(); ++i) {
    const imaging::Image& f = video.frame(i);
    row.clear();
    row.reserve(f.pixel_count() * 3);
    for (const imaging::Rgb8& p : f.pixels()) {
      row.push_back(static_cast<char>(p.r));
      row.push_back(static_cast<char>(p.g));
      row.push_back(static_cast<char>(p.b));
    }
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(out);
}

std::optional<VideoStream> ReadBbv(const std::string& path) {
  auto source = BbvFileSource::Open(path);
  if (!source) return std::nullopt;
  VideoStream video(source->info().fps);
  imaging::Image frame;
  while (source->Next(frame)) video.AddFrame(std::move(frame));
  if (video.frame_count() != source->info().frame_count) {
    return std::nullopt;  // truncated mid-read
  }
  return video;
}

std::optional<BbvFileSource> BbvFileSource::Open(const std::string& path) {
  constexpr std::streamoff kHeaderBytes = 20;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return std::nullopt;
  }
  const auto width = GetU32(in);
  const auto height = GetU32(in);
  const auto frames = GetU32(in);
  const auto fps_mhz = GetU32(in);
  if (!width || !height || !frames || !fps_mhz) return std::nullopt;
  if (*fps_mhz == 0) return std::nullopt;
  // An empty stream legitimately has zero dimensions.
  if (*frames > 0 && (*width == 0 || *height == 0)) return std::nullopt;
  // Refuse absurd headers rather than attempting a huge allocation.
  if (*width > 16384 || *height > 16384 || *frames > 1000000) {
    return std::nullopt;
  }
  // Reject truncated payloads upfront: the header-declared frame count is
  // part of the StreamInfo contract, so the bytes must all be present.
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(*width) * *height * 3;
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  if (file_size < kHeaderBytes ||
      static_cast<std::uint64_t>(file_size - kHeaderBytes) <
          frame_bytes * *frames) {
    return std::nullopt;
  }

  BbvFileSource source;
  source.in_ = std::move(in);
  source.info_ =
      StreamInfo{static_cast<int>(*width), static_cast<int>(*height),
                 static_cast<int>(*frames), *fps_mhz / 1000.0};
  source.buf_.resize(static_cast<std::size_t>(frame_bytes));
  source.Reset();
  return std::optional<BbvFileSource>(std::move(source));
}

void BbvFileSource::Reset() {
  in_.clear();
  in_.seekg(20, std::ios::beg);
  next_ = 0;
}

bool BbvFileSource::Next(imaging::Image& frame) {
  if (next_ >= info_.frame_count) return false;
  in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (static_cast<std::size_t>(in_.gcount()) != buf_.size()) return false;
  if (frame.width() != info_.width || frame.height() != info_.height) {
    frame = imaging::Image(info_.width, info_.height);
  }
  auto px = frame.pixels();
  for (std::size_t k = 0; k < px.size(); ++k) {
    px[k] = {static_cast<std::uint8_t>(buf_[3 * k]),
             static_cast<std::uint8_t>(buf_[3 * k + 1]),
             static_cast<std::uint8_t>(buf_[3 * k + 2])};
  }
  ++next_;
  return true;
}

}  // namespace bb::video
