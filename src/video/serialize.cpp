#include "video/serialize.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/faultinject.h"
#include "common/trace.h"

namespace bb::video {

namespace {

constexpr char kMagic[4] = {'B', 'B', 'V', '1'};
constexpr std::streamoff kHeaderBytes = 20;

void PutU32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes = {
      static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
      static_cast<char>((v >> 16) & 0xFF),
      static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes.data(), 4);
}

std::optional<std::uint32_t> GetU32(std::istream& in) {
  std::array<unsigned char, 4> bytes{};
  in.read(reinterpret_cast<char*>(bytes.data()), 4);
  if (in.gcount() != 4) return std::nullopt;
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

Status HeaderError(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

}  // namespace

bool WriteBbv(const VideoStream& video, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, 4);
  PutU32(out, static_cast<std::uint32_t>(video.width()));
  PutU32(out, static_cast<std::uint32_t>(video.height()));
  PutU32(out, static_cast<std::uint32_t>(video.frame_count()));
  PutU32(out, static_cast<std::uint32_t>(std::lround(video.fps() * 1000.0)));

  std::vector<char> row;
  for (int i = 0; i < video.frame_count(); ++i) {
    const imaging::Image& f = video.frame(i);
    row.clear();
    row.reserve(f.pixel_count() * 3);
    for (const imaging::Rgb8& p : f.pixels()) {
      row.push_back(static_cast<char>(p.r));
      row.push_back(static_cast<char>(p.g));
      row.push_back(static_cast<char>(p.b));
    }
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(out);
}

Result<VideoStream> LoadBbv(const std::string& path) {
  auto source = BbvFileSource::Open(path);
  if (!source.ok()) return source.status();
  VideoStream video(source->info().fps);
  imaging::Image frame;
  for (;;) {
    const FramePull pull = source->Pull(frame);
    if (pull.status == PullStatus::kEnd) break;
    if (pull.status == PullStatus::kBad) {
      return pull.error.WithContext("load " + path);
    }
    video.AddFrame(std::move(frame));
  }
  if (video.frame_count() != source->info().frame_count) {
    return Status(StatusCode::kDataLoss,
                  "stream ended after " +
                      std::to_string(video.frame_count()) + " of " +
                      std::to_string(source->info().frame_count) +
                      " declared frames")
        .WithContext("load " + path);
  }
  return video;
}

std::optional<VideoStream> ReadBbv(const std::string& path) {
  auto loaded = LoadBbv(path);
  if (!loaded.ok()) return std::nullopt;
  return std::move(loaded).value();
}

Result<BbvFileSource> BbvFileSource::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open file")
        .WithContext("open " + path);
  }
  const auto reject = [&path](const Status& status) {
    return status.WithContext("open " + path);
  };
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() != 4) {
    return reject(
        HeaderError("truncated header: file shorter than the 4-byte magic"));
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return reject(HeaderError("bad magic at byte 0 (want BBV1)"));
  }
  const auto width = GetU32(in);
  const auto height = GetU32(in);
  const auto frames = GetU32(in);
  const auto fps_mhz = GetU32(in);
  if (!width || !height || !frames || !fps_mhz) {
    return reject(
        HeaderError("truncated header: fewer than 20 bytes before payload"));
  }
  if (*fps_mhz == 0) {
    return reject(HeaderError("invalid header: fps is zero (bytes 16-19)"));
  }
  // An empty stream legitimately has zero dimensions.
  if (*frames > 0 && (*width == 0 || *height == 0)) {
    return reject(HeaderError(
        "invalid header: zero frame dimensions with a nonzero frame count "
        "(bytes 4-11)"));
  }
  // Refuse absurd headers rather than attempting a huge allocation.
  if (*width > 16384 || *height > 16384 || *frames > 1000000) {
    return reject(HeaderError(
        "implausible header: dimensions or frame count exceed format limits "
        "(bytes 4-15)"));
  }
  // Reject truncated payloads upfront: the header-declared frame count is
  // part of the StreamInfo contract, so the bytes must all be present.
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(*width) * *height * 3;
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  if (file_size < kHeaderBytes ||
      static_cast<std::uint64_t>(file_size - kHeaderBytes) <
          frame_bytes * *frames) {
    const std::uint64_t have =
        file_size < kHeaderBytes
            ? 0
            : static_cast<std::uint64_t>(file_size - kHeaderBytes);
    return reject(HeaderError(
        "truncated payload: " + std::to_string(have) +
        " bytes after the header, " + std::to_string(frame_bytes * *frames) +
        " declared (payload starts at byte 20)"));
  }

  BbvFileSource source;
  source.in_ = std::move(in);
  source.info_ =
      StreamInfo{static_cast<int>(*width), static_cast<int>(*height),
                 static_cast<int>(*frames), *fps_mhz / 1000.0};
  source.buf_.resize(static_cast<std::size_t>(frame_bytes));
  source.Reset();
  return Result<BbvFileSource>(std::move(source));
}

void BbvFileSource::DoReset() {
  in_.clear();
  in_.seekg(kHeaderBytes, std::ios::beg);
  next_ = 0;
}

FramePull BbvFileSource::DoPull(imaging::Image& frame) {
  if (next_ >= info_.frame_count) return FramePull{};
  const int index = next_;
  ++next_;
  const std::streamoff frame_off =
      kHeaderBytes +
      static_cast<std::streamoff>(index) *
          static_cast<std::streamoff>(buf_.size());

  // Keeps the file cursor aligned to the next frame whatever happened to
  // this one, so one unreadable frame never cascades.
  const auto realign = [this, frame_off] {
    in_.clear();
    in_.seekg(frame_off + static_cast<std::streamoff>(buf_.size()),
              std::ios::beg);
  };

  in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const std::size_t got = static_cast<std::size_t>(in_.gcount());
  if (got != buf_.size()) {
    // Open() verified the payload length, so a short read means the file
    // changed underneath us (or the medium failed). Report and realign.
    realign();
    return FramePull{
        PullStatus::kBad,
        Status(StatusCode::kDataLoss,
               "short read: got " + std::to_string(got) + " of " +
                   std::to_string(buf_.size()) + " bytes at byte " +
                   std::to_string(frame_off))
            .WithContext("frame " + std::to_string(index))};
  }
  if (faultinject::Enabled()) {
    if (const auto kind = faultinject::At("read", index)) {
      if (trace::Enabled()) trace::AddCounter("fault.injected.read", 1);
      const char* what =
          *kind == faultinject::FaultKind::kTruncate
              ? "short read (injected)"
              : *kind == faultinject::FaultKind::kCorrupt
                    ? "payload integrity check failed (injected)"
                    : "read failed (injected)";
      return FramePull{
          PullStatus::kBad,
          Status(*kind == faultinject::FaultKind::kFail
                     ? StatusCode::kIoError
                     : StatusCode::kDataLoss,
                 std::string(what) + " at byte " + std::to_string(frame_off))
              .WithContext("frame " + std::to_string(index))};
    }
  }
  if (frame.width() != info_.width || frame.height() != info_.height) {
    frame = imaging::Image(info_.width, info_.height);
  }
  auto px = frame.pixels();
  for (std::size_t k = 0; k < px.size(); ++k) {
    px[k] = {static_cast<std::uint8_t>(buf_[3 * k]),
             static_cast<std::uint8_t>(buf_[3 * k + 1]),
             static_cast<std::uint8_t>(buf_[3 * k + 2])};
  }
  return FramePull{PullStatus::kFrame, OkStatus()};
}

}  // namespace bb::video
