#include "video/container.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

namespace bb::video {

namespace {

void PutU32(std::string* out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

// Cursor-based reader over in-memory footer bytes; Take* return false past
// the end so every truncation lands in one structured-error path (the same
// shape as the BBCK checkpoint reader).
struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  bool TakeU32(std::uint32_t* v) {
    if (pos + 4 > bytes.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[pos++]))
            << shift;
    }
    return true;
  }

  bool TakeU64(std::uint64_t* v) {
    if (pos + 8 > bytes.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes[pos++]))
            << shift;
    }
    return true;
  }
};

Status Corrupt(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

// "write failed at byte N: <OS reason>" - the write-path counterpart of the
// readers' named byte ranges.
Status WriteError(const std::string& what, std::uint64_t at_byte) {
  const int err = errno;
  std::string message = what + " at byte " + std::to_string(at_byte);
  if (err != 0) {
    message += ": ";
    message += std::strerror(err);
  }
  return Status(StatusCode::kIoError, message);
}

// Serializes the RGB payload of one frame into `row` (reused scratch).
void EncodeFrame(const imaging::Image& frame, std::string* row) {
  row->clear();
  row->reserve(frame.pixel_count() * 3);
  // bblint: allow(no-per-pixel-loop) -- FNV content hash; the chained multiply is sequential by definition
  for (const imaging::Rgb8& p : frame.pixels()) {
    row->push_back(static_cast<char>(p.r));
    row->push_back(static_cast<char>(p.g));
    row->push_back(static_cast<char>(p.b));
  }
}

}  // namespace

std::uint64_t Fnv1a64(const char* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

double Bbv2Layout::DedupRatio() const {
  if (blob_offsets.empty()) return 1.0;
  return static_cast<double>(frame_blobs.size()) /
         static_cast<double>(blob_offsets.size());
}

Status ValidateStreamForWrite(int width, int height, int frame_count,
                              double fps) {
  if (width < 0 || height < 0 || width > kMaxBbvDimension ||
      height > kMaxBbvDimension) {
    return Status(StatusCode::kInvalidArgument,
                  "frame dimensions " + std::to_string(width) + "x" +
                      std::to_string(height) + " exceed the format limit of " +
                      std::to_string(kMaxBbvDimension) + " per side");
  }
  if (frame_count < 0 || frame_count > kMaxBbvFrameCount) {
    return Status(StatusCode::kInvalidArgument,
                  "frame count " + std::to_string(frame_count) +
                      " exceeds the format limit of " +
                      std::to_string(kMaxBbvFrameCount));
  }
  // The header stores fps as lround(fps * 1000) in a u32; anything that
  // would round to zero, wrap negative, or overflow produces a header the
  // reader rejects - refuse to write it instead.
  if (!(fps > 0.0) || !std::isfinite(fps)) {
    return Status(StatusCode::kInvalidArgument,
                  "fps must be a positive finite value");
  }
  if (fps * 1000.0 > 4294967295.0) {
    return Status(StatusCode::kInvalidArgument,
                  "fps " + std::to_string(fps) +
                      " overflows the header's milli-fps field");
  }
  if (std::lround(fps * 1000.0) == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "fps " + std::to_string(fps) +
                      " rounds to zero milli-fps in the header");
  }
  return OkStatus();
}

Status WriteBbv2(const VideoStream& video, const std::string& path) {
  const auto context = [&path](Status status) {
    return status.WithContext("write " + path);
  };
  if (const Status valid =
          ValidateStreamForWrite(video.width(), video.height(),
                                 video.frame_count(), video.fps());
      !valid.ok()) {
    return valid.WithContext("write " + path);
  }

  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return context(WriteError("cannot open for writing", 0));

  std::string header;
  header.append(kBbv2Magic, 4);
  PutU32(&header, static_cast<std::uint32_t>(video.width()));
  PutU32(&header, static_cast<std::uint32_t>(video.height()));
  PutU32(&header, static_cast<std::uint32_t>(video.frame_count()));
  PutU32(&header,
         static_cast<std::uint32_t>(std::lround(video.fps() * 1000.0)));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  // Dedup pass: hash each frame; a hash hit is confirmed by comparing the
  // pixels against the blob's first occurrence (both live in `video`), so
  // a collision degrades to a second blob, never to a wrong mapping.
  std::unordered_map<std::uint64_t, std::vector<int>> first_by_hash;
  std::vector<std::uint64_t> blob_offsets, blob_hashes;
  std::vector<std::uint32_t> frame_blobs;
  frame_blobs.reserve(static_cast<std::size_t>(video.frame_count()));
  std::string row;
  std::uint64_t written = static_cast<std::uint64_t>(kBbvHeaderBytes);
  for (int i = 0; i < video.frame_count(); ++i) {
    const imaging::Image& f = video.frame(i);
    EncodeFrame(f, &row);
    const std::uint64_t hash = Fnv1a64(row.data(), row.size());
    std::uint32_t blob = 0;
    bool found = false;
    for (int candidate : first_by_hash[hash]) {
      const auto a = f.pixels();
      const auto b = video.frame(candidate).pixels();
      if (a.size() == b.size() &&
          std::equal(a.begin(), a.end(), b.begin())) {
        blob = frame_blobs[static_cast<std::size_t>(candidate)];
        found = true;
        break;
      }
    }
    if (!found) {
      blob = static_cast<std::uint32_t>(blob_offsets.size());
      blob_offsets.push_back(written);
      blob_hashes.push_back(hash);
      first_by_hash[hash].push_back(i);
      errno = 0;
      out.write(row.data(), static_cast<std::streamsize>(row.size()));
      if (!out) {
        return context(
            WriteError("write failed (frame " + std::to_string(i) + ")",
                       written));
      }
      written += row.size();
    }
    frame_blobs.push_back(blob);
  }

  std::string footer;
  PutU32(&footer, static_cast<std::uint32_t>(blob_offsets.size()));
  for (std::size_t k = 0; k < blob_offsets.size(); ++k) {
    PutU64(&footer, blob_offsets[k]);
    PutU64(&footer, blob_hashes[k]);
  }
  for (std::uint32_t id : frame_blobs) PutU32(&footer, id);

  std::string trailer;
  PutU64(&trailer, written);  // footer_off
  PutU64(&trailer, Fnv1a64(footer.data(), footer.size()));
  trailer.append(kBbv2TrailerMagic, 4);

  errno = 0;
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return context(WriteError("write failed (footer)", written));
  return OkStatus();
}

Result<Bbv2Layout> ReadBbv2Layout(std::istream& in, std::uint64_t file_size,
                                  const std::string& path) {
  const auto reject = [&path](const Status& status) {
    return status.WithContext("open " + path);
  };
  const std::uint64_t min_size =
      static_cast<std::uint64_t>(kBbvHeaderBytes + kBbv2TrailerBytes);
  if (file_size < min_size) {
    return reject(Corrupt(
        "truncated container: " + std::to_string(file_size) +
        " bytes, smaller than the 20-byte header plus 20-byte trailer"));
  }

  // Header (same 20-byte shape as v1).
  in.clear();
  in.seekg(0, std::ios::beg);
  std::string header(static_cast<std::size_t>(kBbvHeaderBytes), '\0');
  in.read(header.data(), kBbvHeaderBytes);
  if (in.gcount() != kBbvHeaderBytes ||
      std::memcmp(header.data(), kBbv2Magic, 4) != 0) {
    return reject(Corrupt("bad magic at byte 0 (want BBV2)"));
  }
  Reader hr{header, 4};
  std::uint32_t width = 0, height = 0, frames = 0, fps_mhz = 0;
  (void)hr.TakeU32(&width);
  (void)hr.TakeU32(&height);
  (void)hr.TakeU32(&frames);
  (void)hr.TakeU32(&fps_mhz);
  if (fps_mhz == 0) {
    return reject(Corrupt("invalid header: fps is zero (bytes 16-19)"));
  }
  if (frames > 0 && (width == 0 || height == 0)) {
    return reject(Corrupt(
        "invalid header: zero frame dimensions with a nonzero frame count "
        "(bytes 4-11)"));
  }
  if (width > static_cast<std::uint32_t>(kMaxBbvDimension) ||
      height > static_cast<std::uint32_t>(kMaxBbvDimension) ||
      frames > static_cast<std::uint32_t>(kMaxBbvFrameCount)) {
    return reject(Corrupt(
        "implausible header: dimensions or frame count exceed format limits "
        "(bytes 4-15)"));
  }

  // Trailer: the last 20 bytes locate and seal the footer.
  const std::uint64_t trailer_begin =
      file_size - static_cast<std::uint64_t>(kBbv2TrailerBytes);
  in.seekg(static_cast<std::streamoff>(trailer_begin), std::ios::beg);
  std::string trailer(static_cast<std::size_t>(kBbv2TrailerBytes), '\0');
  in.read(trailer.data(), kBbv2TrailerBytes);
  if (in.gcount() != kBbv2TrailerBytes) {
    return reject(Corrupt("truncated trailer at bytes " +
                          std::to_string(trailer_begin) + "-" +
                          std::to_string(file_size - 1)));
  }
  if (trailer.compare(16, 4, kBbv2TrailerMagic, 4) != 0) {
    return reject(Corrupt("bad trailer magic at bytes " +
                          std::to_string(file_size - 4) + "-" +
                          std::to_string(file_size - 1) + " (want BB2X)"));
  }
  Reader tr{trailer, 0};
  std::uint64_t footer_begin = 0, declared_sum = 0;
  (void)tr.TakeU64(&footer_begin);
  (void)tr.TakeU64(&declared_sum);
  if (footer_begin < static_cast<std::uint64_t>(kBbvHeaderBytes) ||
      footer_begin > trailer_begin) {
    return reject(Corrupt(
        "footer offset " + std::to_string(footer_begin) +
        " outside the payload region [20, " + std::to_string(trailer_begin) +
        ") (trailer bytes " + std::to_string(trailer_begin) + "-" +
        std::to_string(trailer_begin + 7) + ")"));
  }

  // Checksum first (the BBCK discipline): any bit flip in the footer is
  // caught before a single field is trusted.
  const std::uint64_t footer_size = trailer_begin - footer_begin;
  in.seekg(static_cast<std::streamoff>(footer_begin), std::ios::beg);
  std::string footer(static_cast<std::size_t>(footer_size), '\0');
  in.read(footer.data(), static_cast<std::streamsize>(footer_size));
  if (static_cast<std::uint64_t>(in.gcount()) != footer_size) {
    return reject(Corrupt("truncated footer at bytes " +
                          std::to_string(footer_begin) + "-" +
                          std::to_string(trailer_begin - 1)));
  }
  if (Fnv1a64(footer.data(), footer.size()) != declared_sum) {
    return reject(Corrupt("footer checksum mismatch over bytes " +
                          std::to_string(footer_begin) + "-" +
                          std::to_string(trailer_begin - 1) +
                          " (file corrupted)"));
  }

  // Plausibility: sizes first, then every offset and id against the
  // canonical layout, so no table entry can point into the footer, past
  // the file, at another table entry, or at itself (dedup cycles).
  Reader fr{footer, 0};
  std::uint32_t blob_count = 0;
  if (!fr.TakeU32(&blob_count)) {
    return reject(Corrupt("truncated footer: missing blob count at byte " +
                          std::to_string(footer_begin)));
  }
  if (blob_count > frames) {
    return reject(Corrupt("implausible footer: " +
                          std::to_string(blob_count) + " blobs for " +
                          std::to_string(frames) + " frames"));
  }
  const std::uint64_t expected_footer =
      4 + static_cast<std::uint64_t>(blob_count) * 16 +
      static_cast<std::uint64_t>(frames) * 4;
  if (footer_size != expected_footer) {
    return reject(Corrupt(
        "footer size mismatch: " + std::to_string(footer_size) +
        " bytes at " + std::to_string(footer_begin) + ", " +
        std::to_string(expected_footer) + " expected for " +
        std::to_string(blob_count) + " blobs / " + std::to_string(frames) +
        " frames"));
  }
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(width) * height * 3;
  if (footer_begin - static_cast<std::uint64_t>(kBbvHeaderBytes) !=
      frame_bytes * blob_count) {
    return reject(Corrupt(
        "payload size mismatch: bytes 20-" + std::to_string(footer_begin - 1) +
        " hold " +
        std::to_string(footer_begin -
                       static_cast<std::uint64_t>(kBbvHeaderBytes)) +
        " bytes, " + std::to_string(frame_bytes * blob_count) +
        " expected for " + std::to_string(blob_count) + " blobs"));
  }

  Bbv2Layout layout;
  layout.info = StreamInfo{static_cast<int>(width), static_cast<int>(height),
                           static_cast<int>(frames), fps_mhz / 1000.0};
  layout.footer_begin = footer_begin;
  layout.blob_offsets.reserve(blob_count);
  layout.blob_hashes.reserve(blob_count);
  for (std::uint32_t k = 0; k < blob_count; ++k) {
    std::uint64_t offset = 0, hash = 0;
    (void)fr.TakeU64(&offset);
    (void)fr.TakeU64(&hash);
    const std::uint64_t canonical =
        static_cast<std::uint64_t>(kBbvHeaderBytes) + frame_bytes * k;
    if (offset != canonical) {
      return reject(Corrupt(
          "blob " + std::to_string(k) + " offset " + std::to_string(offset) +
          " is not the canonical " + std::to_string(canonical) +
          " (footer byte " +
          std::to_string(footer_begin + 4 + static_cast<std::uint64_t>(k) * 16) +
          "; overlapping or cyclic dedup entries are not valid)"));
    }
    layout.blob_offsets.push_back(offset);
    layout.blob_hashes.push_back(hash);
  }
  layout.frame_blobs.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i) {
    std::uint32_t id = 0;
    (void)fr.TakeU32(&id);
    if (id >= blob_count) {
      return reject(Corrupt(
          "frame " + std::to_string(i) + " references blob " +
          std::to_string(id) + " of " + std::to_string(blob_count) +
          " (footer byte " +
          std::to_string(footer_begin + 4 +
                         static_cast<std::uint64_t>(blob_count) * 16 +
                         static_cast<std::uint64_t>(i) * 4) +
          ")"));
    }
    layout.frame_blobs.push_back(id);
  }
  return layout;
}

Result<Bbv2Layout> InspectBbv2(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open file")
        .WithContext("open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  return ReadBbv2Layout(in, static_cast<std::uint64_t>(size), path);
}

}  // namespace bb::video
