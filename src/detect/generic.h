// Generic object inference - the RetinaNet/YOLO substitute.
//
// The paper runs pretrained detectors (COCO / ImageNet classes) over the
// reconstructed backgrounds (sec. VI, Fig. 14). Without pretrained weights,
// this module provides per-class feature detectors for the object classes
// the synthetic scenes contain. Each detector answers the same experimental
// question: is class X recognizable in the partial reconstruction?
//
// Detection is component-based: connected regions of recovered pixels are
// classified by shape/color features (area, aspect, fill ratio, hue modes,
// stripe signature, interior brightness).
#pragma once

#include <vector>

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::detect {

enum class ObjectClass {
  kBook,
  kBookshelf,
  kMonitor,
  kTv,
  kClock,
  kStickyNote,
  kPoster,  // covers posters and paintings (flat wall art)
  kToy,
};

const char* ToString(ObjectClass c);

struct Detection {
  ObjectClass cls;
  imaging::Rect rect;
  double confidence = 0.0;
};

struct GenericDetectorOptions {
  // A component must have at least this many pixels to be classified.
  std::size_t min_area = 30;
  // Minimum fraction of a candidate's bounding box that must be recovered.
  double min_recovered_fraction = 0.35;
  // Saturation above which a pixel counts as "colorful".
  float min_saturation = 0.30f;
  // Value below which a pixel counts as "dark" (screen bezels).
  float dark_value = 0.30f;
};

// Runs all class detectors over the reconstruction; only pixels with
// coverage set are considered. Results are not NMS'd across classes (one
// region may plausibly be reported as, e.g., both book and poster; callers
// score per class as the paper does).
std::vector<Detection> DetectObjects(const imaging::Image& reconstruction,
                                     const imaging::Bitmap& coverage,
                                     const GenericDetectorOptions& opts = {});

}  // namespace bb::detect
