// Non-maximum suppression for detections.
//
// The per-class detectors can fire multiple times on one object (e.g. a
// bookshelf's interior strips alongside the shelf itself); NMS keeps the
// most confident detection of each overlapping same-class group, the way
// the paper's RetinaNet/YOLO pipelines post-process their proposals.
#pragma once

#include <vector>

#include "detect/generic.h"

namespace bb::detect {

// Greedy same-class NMS: detections are considered in decreasing
// confidence; a detection is dropped when it overlaps an already-kept
// detection of the same class with IoU >= `iou_threshold`. Order of the
// survivors is by decreasing confidence.
std::vector<Detection> NonMaxSuppression(std::vector<Detection> detections,
                                         double iou_threshold = 0.4);

}  // namespace bb::detect
