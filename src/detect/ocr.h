// Text inference - the TextFuseNet substitute.
//
// The paper detects text boxes in the reconstruction and recognizes their
// contents (sec. VI, Fig. 14b: a sticky note's text). This module locates
// candidate text-bearing regions (sticky notes, posters) in a partial
// reconstruction and recognizes glyphs by correlation against the same 5x7
// font family the synthetic scenes render with - degraded, like the paper's
// setting, by the holes and noise of the reconstruction.
#pragma once

#include <string>
#include <vector>

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::detect {

struct OcrOptions {
  // Ink = pixels darker than the region's bright mass by this luma margin.
  double ink_luma_margin = 45.0;
  // Minimum fraction of a glyph cell's pixels that must be recovered for
  // the cell to be read at all.
  double min_cell_coverage = 0.3;
  // Minimum correlation for a glyph to be accepted (below: '?').
  double min_glyph_score = 0.62;
  // Maximum characters read per region (sanity bound).
  int max_chars = 16;
};

struct OcrResult {
  std::string text;        // recognized characters; '?' = unreadable cell
  double mean_confidence = 0.0;
  int readable_chars = 0;  // characters recognized above threshold
};

// Reads one line of text inside `region` of the reconstruction, honoring
// the coverage mask (unrecovered pixels are "unknown", not background).
OcrResult ReadTextRegion(const imaging::Image& reconstruction,
                         const imaging::Bitmap& coverage,
                         const imaging::Rect& region,
                         const OcrOptions& opts = {});

struct TextDetection {
  imaging::Rect region;
  OcrResult result;
};

// Full pipeline: finds candidate text-bearing regions (via the generic
// detectors) and OCRs each.
std::vector<TextDetection> DetectText(const imaging::Image& reconstruction,
                                      const imaging::Bitmap& coverage,
                                      const OcrOptions& opts = {});

// Character accuracy of `recognized` against `truth` (case-insensitive,
// positional, length mismatches count as errors). In [0, 1].
double CharacterAccuracy(const std::string& truth,
                         const std::string& recognized);

}  // namespace bb::detect
