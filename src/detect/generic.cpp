#include "detect/generic.h"

#include "detect/nms.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "imaging/color.h"
#include "imaging/connected_components.h"
#include "imaging/morphology.h"

namespace bb::detect {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;
using imaging::Rect;

const char* ToString(ObjectClass c) {
  switch (c) {
    case ObjectClass::kBook: return "book";
    case ObjectClass::kBookshelf: return "bookshelf";
    case ObjectClass::kMonitor: return "monitor";
    case ObjectClass::kTv: return "tv";
    case ObjectClass::kClock: return "clock";
    case ObjectClass::kStickyNote: return "sticky_note";
    case ObjectClass::kPoster: return "poster";
    case ObjectClass::kToy: return "toy";
  }
  return "unknown";
}

namespace {

struct ComponentFeatures {
  Rect bbox;
  std::size_t area = 0;
  double fill = 0.0;            // area / bbox area
  double aspect = 1.0;          // h / w
  double frame_fraction = 0.0;  // area / frame pixels
  double recovered_in_bbox = 0.0;
  int hue_modes = 0;            // hue-histogram bins holding >= 12% of pixels
  int hue_bins_used = 0;        // bins holding >= 2% of colorful pixels
  double dominant_hue = 0.0;
  double mean_sat = 0.0;
  double mean_val = 0.0;
  double stripe_score = 0.0;     // column-to-column hue discontinuity
  double interior_light = 0.0;   // fraction of central covered pixels that
                                 // are bright & low-sat (clock face, screen)
};

ComponentFeatures ComputeFeatures(const Image& img, const Bitmap& coverage,
                                  const imaging::ImageT<int>& labels,
                                  const imaging::Component& comp) {
  ComponentFeatures f;
  f.bbox = comp.bbox;
  f.area = comp.area;
  f.fill = comp.bbox.Area() > 0
               ? static_cast<double>(comp.area) /
                     static_cast<double>(comp.bbox.Area())
               : 0.0;
  f.aspect = comp.bbox.w > 0
                 ? static_cast<double>(comp.bbox.h) / comp.bbox.w
                 : 1.0;
  f.frame_fraction =
      static_cast<double>(comp.area) / static_cast<double>(img.pixel_count());

  std::array<int, 12> hue_hist{};
  int colorful = 0;
  double sat_sum = 0.0, val_sum = 0.0;
  long long covered_in_bbox = 0;
  int hue_jumps = 0, hue_pairs = 0;

  for (int y = comp.bbox.y; y < comp.bbox.y2(); ++y) {
    float prev_hue = -1.0f;
    for (int x = comp.bbox.x; x < comp.bbox.x2(); ++x) {
      if (coverage(x, y)) ++covered_in_bbox;
      if (labels(x, y) != comp.label) {
        prev_hue = -1.0f;
        continue;
      }
      const Hsv h = imaging::RgbToHsv(img(x, y));
      sat_sum += h.s;
      val_sum += h.v;
      if (h.s >= 0.3f) {
        ++colorful;
        // Hue binning wants the floor, not the nearest bin.
        int bin = static_cast<int>(std::floor(h.h / 30.0f));
        bin = std::clamp(bin, 0, 11);
        ++hue_hist[static_cast<std::size_t>(bin)];
        // Horizontal stripe signature: hue discontinuities between
        // neighbouring colorful pixels in the same row (book spines).
        if (prev_hue >= 0.0f) {
          ++hue_pairs;
          if (imaging::HueDistance(h.h, prev_hue) > 28.0f) ++hue_jumps;
        }
        prev_hue = h.h;
      } else {
        prev_hue = -1.0f;
      }
    }
  }
  f.mean_sat = sat_sum / std::max<std::size_t>(1, comp.area);
  f.mean_val = val_sum / std::max<std::size_t>(1, comp.area);
  f.recovered_in_bbox =
      comp.bbox.Area() > 0
          ? static_cast<double>(covered_in_bbox) /
                static_cast<double>(comp.bbox.Area())
          : 0.0;

  int best_bin = 0;
  for (int b = 0; b < 12; ++b) {
    if (hue_hist[static_cast<std::size_t>(b)] >
        hue_hist[static_cast<std::size_t>(best_bin)]) {
      best_bin = b;
    }
    if (colorful > 0 &&
        hue_hist[static_cast<std::size_t>(b)] >= 0.12 * colorful) {
      ++f.hue_modes;
    }
    if (colorful > 0 &&
        hue_hist[static_cast<std::size_t>(b)] >=
            std::max(2.0, 0.02 * colorful)) {
      ++f.hue_bins_used;
    }
  }
  f.dominant_hue = best_bin * 30.0 + 15.0;

  f.stripe_score =
      hue_pairs > 0 ? static_cast<double>(hue_jumps) / hue_pairs : 0.0;

  // Interior brightness: central third of the bbox.
  const Rect inner{comp.bbox.x + comp.bbox.w / 3,
                   comp.bbox.y + comp.bbox.h / 3,
                   std::max(1, comp.bbox.w / 3),
                   std::max(1, comp.bbox.h / 3)};
  int light = 0, inner_n = 0;
  for (int y = inner.y; y < inner.y2(); ++y) {
    for (int x = inner.x; x < inner.x2(); ++x) {
      if (!img.InBounds(x, y) || !coverage(x, y)) continue;
      ++inner_n;
      const Hsv h = imaging::RgbToHsv(img(x, y));
      if (h.v > 0.6f && h.s < 0.35f) ++light;
    }
  }
  f.interior_light = inner_n > 0 ? static_cast<double>(light) / inner_n : 0.0;
  return f;
}

void ClassifyColorful(const ComponentFeatures& f,
                      std::vector<Detection>& out) {
  // Clock: ring (low fill), squarish, one hue mode, light interior.
  if (f.fill < 0.75 && f.aspect > 0.6 && f.aspect < 1.6 &&
      f.hue_modes <= 2 && f.interior_light > 0.3 &&
      f.frame_fraction > 0.001) {
    out.push_back({ObjectClass::kClock, f.bbox,
                   0.5 + 0.5 * f.interior_light});
    return;
  }
  // Bookshelf: larger region, many distinct hues, spine-stripe signature.
  if (f.frame_fraction > 0.01 && f.hue_bins_used >= 5 &&
      f.stripe_score > 0.08) {
    out.push_back({ObjectClass::kBookshelf, f.bbox,
                   std::min(1.0, 0.4 + f.stripe_score)});
    return;
  }
  // Sticky note: small yellow square.
  if (f.frame_fraction < 0.04 && f.dominant_hue > 35.0 &&
      f.dominant_hue < 80.0 && f.aspect > 0.6 && f.aspect < 1.7 &&
      f.fill > 0.55 && f.mean_sat > 0.35) {
    out.push_back({ObjectClass::kStickyNote, f.bbox, 0.5 + f.fill / 2});
    return;
  }
  // Toy: small compact blob with 2+ hues.
  if (f.frame_fraction < 0.012 && f.hue_modes >= 2 && f.fill > 0.4) {
    out.push_back({ObjectClass::kToy, f.bbox, 0.45 + 0.1 * f.hue_modes});
    return;
  }
  // Book: small tall saturated rectangle.
  if (f.frame_fraction < 0.03 && f.aspect >= 1.4 && f.fill > 0.55 &&
      f.hue_modes <= 2) {
    out.push_back({ObjectClass::kBook, f.bbox, 0.4 + f.fill / 2});
    return;
  }
  // Poster / painting: large filled rectangle of few hues.
  if (f.frame_fraction >= 0.015 && f.fill > 0.55 && f.aspect > 0.35 &&
      f.aspect < 2.8) {
    out.push_back({ObjectClass::kPoster, f.bbox, 0.4 + f.fill / 2});
  }
}

void ClassifyDark(const ComponentFeatures& f, std::vector<Detection>& out) {
  // Screens: the dark bezel is a thin RING around the bright panel, so its
  // fill within the bounding box is low; solid dark slabs (shelf interiors,
  // shadows) are not screens.
  if (f.frame_fraction < 0.004 || f.aspect > 1.4) return;
  if (f.fill < 0.12 || f.fill > 0.55) return;
  const double width_ratio = 1.0 / std::max(1e-6, f.aspect);  // w / h
  if (width_ratio >= 1.45) {
    out.push_back({ObjectClass::kTv, f.bbox, 0.6 + 0.5 * (0.55 - f.fill)});
  } else if (width_ratio >= 0.9) {
    out.push_back({ObjectClass::kMonitor, f.bbox,
                   0.6 + 0.5 * (0.55 - f.fill)});
  }
}

}  // namespace

std::vector<Detection> DetectObjects(const Image& reconstruction,
                                     const Bitmap& coverage,
                                     const GenericDetectorOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "DetectObjects");
  std::vector<Detection> out;

  // Colorful candidate mask.
  Bitmap colorful(reconstruction.width(), reconstruction.height());
  Bitmap dark(reconstruction.width(), reconstruction.height());
  for (int y = 0; y < reconstruction.height(); ++y) {
    for (int x = 0; x < reconstruction.width(); ++x) {
      if (!coverage(x, y)) continue;
      const Hsv h = imaging::RgbToHsv(reconstruction(x, y));
      if (h.s >= opts.min_saturation && h.v > 0.18f) {
        colorful(x, y) = imaging::kMaskSet;
      }
      if (h.v <= opts.dark_value) dark(x, y) = imaging::kMaskSet;
    }
  }
  // Bridge small reconstruction holes so one object stays one component.
  colorful = imaging::CloseDisc(colorful, 2.0);
  dark = imaging::CloseDisc(dark, 2.0);

  {
    const auto labeling = imaging::LabelComponents(colorful);
    for (const auto& comp : labeling.components) {
      if (comp.area < opts.min_area) continue;
      const auto f = ComputeFeatures(reconstruction, coverage,
                                     labeling.labels, comp);
      if (f.recovered_in_bbox < opts.min_recovered_fraction) continue;
      ClassifyColorful(f, out);
    }
  }
  {
    const auto labeling = imaging::LabelComponents(dark);
    for (const auto& comp : labeling.components) {
      if (comp.area < opts.min_area) continue;
      const auto f = ComputeFeatures(reconstruction, coverage,
                                     labeling.labels, comp);
      if (f.recovered_in_bbox < opts.min_recovered_fraction) continue;
      ClassifyDark(f, out);
    }
  }
  return NonMaxSuppression(std::move(out));
}

}  // namespace bb::detect
