#include "detect/template_match.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/trace.h"
#include "imaging/kernels/kernels.h"
#include "imaging/pyramid.h"
#include "imaging/transform.h"
#include "video/frame_source.h"

namespace bb::detect {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;
using imaging::Rect;

namespace kernels = imaging::kernels;

IntegralMask::IntegralMask(const Bitmap& mask)
    : width_(mask.width()), height_(mask.height()),
      table_(static_cast<std::size_t>(mask.width() + 1) *
             (mask.height() + 1), 0) {
  const int w1 = width_ + 1;
  for (int y = 0; y < height_; ++y) {
    long long row_sum = 0;
    for (int x = 0; x < width_; ++x) {
      row_sum += mask(x, y) ? 1 : 0;
      table_[static_cast<std::size_t>(y + 1) * w1 + (x + 1)] =
          table_[static_cast<std::size_t>(y) * w1 + (x + 1)] + row_sum;
    }
  }
}

long long IntegralMask::Sum(const Rect& r) const {
  const Rect c = r.Intersect({0, 0, width_, height_});
  if (c.Empty()) return 0;
  const int w1 = width_ + 1;
  auto at = [&](int x, int y) {
    return table_[static_cast<std::size_t>(y) * w1 + x];
  };
  return at(c.x2(), c.y2()) - at(c.x, c.y2()) - at(c.x2(), c.y) +
         at(c.x, c.y);
}

namespace {

// Template sample grid in structure-of-arrays form, ready for
// kernels::MatchHsvBounded.
struct TemplateSamples {
  std::vector<std::int32_t> xs, ys;
  std::vector<Hsv> hsv;

  bool empty() const { return xs.empty(); }
};

TemplateSamples CollectSamples(const Image& img, const Bitmap& valid,
                               int tstride,
                               const std::optional<imaging::Rgb8>& ignore) {
  TemplateSamples out;
  for (int y = 0; y < img.height(); y += tstride) {
    for (int x = 0; x < img.width(); x += tstride) {
      if (!valid.empty() && !valid(x, y)) continue;
      if (ignore && img(x, y) == *ignore) continue;  // canvas filler
      out.xs.push_back(x);
      out.ys.push_back(y);
      out.hsv.push_back(imaging::RgbToHsv(img(x, y)));
    }
  }
  return out;
}

// Everything derived from the template for one (scale, rotation) pair,
// computed once up front. The scaled image itself is derived once per
// *scale* and shared across rotations - the cache that replaces the
// per-sweep re-derivation the hot loop used to pay for.
struct JobPlan {
  int scale_index = 0;
  int rot_index = 0;
  double scale = 1.0;
  double rotation = 0.0;
  int tw = 0, th = 0;
  long long window_area = 0;
  bool pruned_entirely = false;
  TemplateSamples fine;    // samples on the rotated, scaled template
  TemplateSamples coarse;  // samples on its 2x pyramid level (visit order)
};

Image Downsample2xImage(const Image& img) {
  return imaging::FromBandImage(imaging::Downsample2x(
      imaging::ToBandImage(img)));
}

}  // namespace

TemplateMatchResult MatchTemplate(const Image& reconstruction,
                                  const Bitmap& coverage, const Image& templ,
                                  const TemplateMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "MatchTemplate");
  const trace::ScopedTimer timer("detect.match_template");
  TemplateMatchResult best;
  if (templ.empty() || reconstruction.empty()) return best;

  const IntegralMask cov_integral(coverage);
  const long long frame_pixels =
      static_cast<long long>(reconstruction.pixel_count());
  const int gw = reconstruction.width();
  const int gh = reconstruction.height();

  // Precompute the reconstruction's HSV once.
  imaging::ImageT<Hsv> recon_hsv(gw, gh);
  kernels::RgbToHsvSpan(reconstruction.pixels(), recon_hsv.pixels());

  // Coarse level for visit ordering (pruned mode only): the reconstruction's
  // 2x pyramid level plus a matching nearest-neighbour coverage grid. The
  // coarse pass only *orders* windows - every returned number still comes
  // from the fine evaluation - so it cannot change results, only how early
  // the incumbent gets good and how much the bound prunes.
  imaging::ImageT<Hsv> coarse_hsv;
  Bitmap coarse_cov;
  if (opts.prune) {
    const Image coarse_img = Downsample2xImage(reconstruction);
    coarse_hsv = imaging::ImageT<Hsv>(coarse_img.width(), coarse_img.height());
    kernels::RgbToHsvSpan(coarse_img.pixels(), coarse_hsv.pixels());
    coarse_cov = imaging::ResizeNearest(coverage, coarse_img.width(),
                                        coarse_img.height());
  }

  const int stride = std::max(1, opts.window_stride);
  const int tstride = std::max(1, opts.sample_stride);
  const kernels::HsvMatchParams params{opts.min_saturation, opts.hue_tolerance,
                                       opts.value_tolerance};
  const std::int32_t min_compared =
      static_cast<std::int32_t>(std::max(1, opts.min_compared_samples));

  // ---- Template derivation cache ----------------------------------------
  // Serial precompute of every (scale, rotation) derivation, with the
  // scaled template derived once per scale and pooled buffers reused across
  // derivations. Each reuse of an already-derived scaled template is a
  // cache hit the old per-job derivation would have re-paid.
  std::vector<JobPlan> plans;
  std::uint64_t template_cache_hits = 0;
  {
    video::BufferPool pool;
    for (int si = 0; si < static_cast<int>(opts.scales.size()); ++si) {
      const double scale = opts.scales[static_cast<std::size_t>(si)];
      // Round (not truncate) the scaled dimensions so sweeps are symmetric:
      // a 31-px template at scale 0.99 must stay 31 px, not drop to 30.
      const int tw = std::max(
          2, static_cast<int>(std::lround(templ.width() * scale)));
      const int th = std::max(
          2, static_cast<int>(std::lround(templ.height() * scale)));
      const long long window_area = static_cast<long long>(tw) * th;
      const bool viable =
          tw <= gw && th <= gh &&
          static_cast<double>(window_area) >=
              opts.min_window_fraction * static_cast<double>(frame_pixels);

      Image scaled;
      bool scaled_derived = false;
      for (int ri = 0; ri < static_cast<int>(opts.rotations.size()); ++ri) {
        JobPlan plan;
        plan.scale_index = si;
        plan.rot_index = ri;
        plan.scale = scale;
        plan.rotation = opts.rotations[static_cast<std::size_t>(ri)];
        plan.tw = tw;
        plan.th = th;
        plan.window_area = window_area;
        if (!viable) {
          plan.pruned_entirely = true;  // paper's minimum-window constraint
          plans.push_back(std::move(plan));
          continue;
        }
        if (!scaled_derived) {
          scaled = pool.AcquireImage(tw, th);
          imaging::ResizeNearestInto(templ, tw, th, &scaled);
          scaled_derived = true;
        } else {
          ++template_cache_hits;
        }

        // Rotation filler pixels carry no object evidence; the validity
        // mask (not a sentinel color) identifies them, so genuinely black
        // template pixels keep contributing samples.
        if (plan.rotation == 0.0) {
          plan.fine = CollectSamples(scaled, Bitmap(), tstride,
                                     opts.ignore_exact_color);
          if (opts.prune && !plan.fine.empty()) {
            plan.coarse = CollectSamples(Downsample2xImage(scaled), Bitmap(),
                                         tstride, std::nullopt);
          }
        } else {
          Image rotated = pool.AcquireImage(tw, th);
          Bitmap rot_valid = pool.AcquireBitmap(tw, th);
          imaging::RotateInto(scaled, plan.rotation, &rot_valid, &rotated);
          plan.fine = CollectSamples(rotated, rot_valid, tstride,
                                     opts.ignore_exact_color);
          if (opts.prune && !plan.fine.empty()) {
            const Image coarse_tmpl = Downsample2xImage(rotated);
            plan.coarse = CollectSamples(
                coarse_tmpl,
                imaging::ResizeNearest(rot_valid, coarse_tmpl.width(),
                                       coarse_tmpl.height()),
                tstride, std::nullopt);
          }
          pool.Release(std::move(rotated));
          pool.Release(std::move(rot_valid));
        }
        if (plan.fine.empty()) plan.pruned_entirely = true;
        plans.push_back(std::move(plan));
      }
      if (scaled_derived) pool.Release(std::move(scaled));
    }
  }

  // ---- Sweep ------------------------------------------------------------
  // One job per (scale, rotation) plan; each sweeps its windows serially
  // against a job-local incumbent (so pruning never depends on thread
  // interleaving) and records job-local tallies, flushed serially below.
  struct Job {
    std::int64_t best_m = 0;
    std::int64_t best_c = 1;  // sentinel: "score 0" - old code required > 0
    std::int64_t best_order = -1;
    Rect best_window;
    bool any = false;
    std::uint64_t windows_scored = 0;
    std::uint64_t windows_pruned = 0;
    std::uint64_t windows_abandoned = 0;
  };
  std::vector<Job> jobs(plans.size());

  common::ParallelFor(0, static_cast<std::int64_t>(plans.size()), /*grain=*/1,
                      [&](std::int64_t j) {
    const JobPlan& plan = plans[static_cast<std::size_t>(j)];
    Job& job = jobs[static_cast<std::size_t>(j)];
    if (plan.pruned_entirely) return;

    // Enumerate windows passing the recovered-fraction constraint.
    struct Pos {
      std::int32_t wx, wy;
      std::int64_t order;         // serial (wy, wx) scan position
      std::int32_t cm = 0, cc = 0;  // coarse score (visit ordering only)
    };
    std::vector<Pos> positions;
    std::int64_t order = 0;
    for (int wy = 0; wy + plan.th <= gh; wy += stride) {
      for (int wx = 0; wx + plan.tw <= gw; wx += stride) {
        const long long recovered =
            cov_integral.Sum({wx, wy, plan.tw, plan.th});
        if (static_cast<double>(recovered) <
            opts.min_recovered_fraction *
                static_cast<double>(plan.window_area)) {
          ++job.windows_pruned;  // paper's recovered-pixel constraint
          continue;
        }
        positions.push_back({wx, wy, order++, 0, 0});
      }
    }

    if (opts.prune && !plan.coarse.empty()) {
      // Coarse pass: score each window's half-resolution projection, then
      // visit fine windows best-coarse-first so the incumbent is strong
      // before most of the sweep starts.
      for (Pos& p : positions) {
        const kernels::WindowScore ws = kernels::MatchHsvBounded(
            plan.coarse.hsv, plan.coarse.xs, plan.coarse.ys,
            coarse_hsv.pixels(), coarse_hsv.width(), coarse_hsv.height(),
            coarse_cov.pixels(), p.wx / 2, p.wy / 2, params,
            /*best_matched=*/0, /*best_compared=*/0, /*tie_wins=*/false,
            /*min_compared=*/0);
        p.cm = ws.matched;
        p.cc = ws.compared;
      }
      std::sort(positions.begin(), positions.end(),
                [](const Pos& a, const Pos& b) {
                  if (kernels::FractionGreater(a.cm, a.cc, b.cm, b.cc)) {
                    return true;
                  }
                  if (kernels::FractionEqual(a.cm, a.cc, b.cm, b.cc)) {
                    return a.order < b.order;
                  }
                  return false;
                });
    }

    for (const Pos& p : positions) {
      // tie_wins: would this window, on an exact tie, replace the incumbent
      // under the serial first-maximum rule? Only when it comes earlier in
      // (wy, wx) scan order - which makes the winner independent of the
      // coarse-pass visit order.
      const bool tie_wins = job.any && p.order < job.best_order;
      const kernels::WindowScore ws = kernels::MatchHsvBounded(
          plan.fine.hsv, plan.fine.xs, plan.fine.ys, recon_hsv.pixels(), gw,
          gh, coverage.pixels(), p.wx, p.wy, params,
          opts.prune ? job.best_m : 0, opts.prune ? job.best_c : 0, tie_wins,
          opts.prune ? min_compared : 0);
      if (ws.abandoned) {
        ++job.windows_abandoned;
        continue;
      }
      if (ws.compared < min_compared) {
        ++job.windows_pruned;
        continue;
      }
      ++job.windows_scored;
      const std::int64_t m = ws.matched, c = ws.compared;
      if (kernels::FractionGreater(m, c, job.best_m, job.best_c) ||
          (job.any && kernels::FractionEqual(m, c, job.best_m, job.best_c) &&
           p.order < job.best_order)) {
        job.best_m = m;
        job.best_c = c;
        job.best_order = p.order;
        job.best_window = {p.wx, p.wy, plan.tw, plan.th};
        job.any = true;
      }
    }
  });

  // Deterministic argmax: jobs are visited in (scale_index, rot_index)
  // order and each job keeps the first maximum in (wy, wx) scan order, so
  // with exact fraction comparison and a strict `greater` the winner
  // matches the serial nested-loop scan exactly - ties break toward the
  // lowest (scale, rotation, wy, wx).
  std::uint64_t windows_scored = 0, windows_pruned = 0,
                windows_abandoned = 0, jobs_pruned = 0;
  std::int64_t best_m = 0, best_c = 1;
  bool any = false;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    const JobPlan& plan = plans[j];
    windows_scored += job.windows_scored;
    windows_pruned += job.windows_pruned;
    windows_abandoned += job.windows_abandoned;
    jobs_pruned += plan.pruned_entirely ? 1 : 0;
    if (job.any &&
        kernels::FractionGreater(job.best_m, job.best_c, best_m, best_c)) {
      best_m = job.best_m;
      best_c = job.best_c;
      best.window = job.best_window;
      best.scale = plan.scale;
      best.rotation = plan.rotation;
      any = true;
    }
  }
  if (any) {
    best.score = static_cast<double>(best_m) / static_cast<double>(best_c);
  }
  if (trace::Enabled()) {
    trace::AddCounter("match_template.windows_scored", windows_scored);
    trace::AddCounter("match_template.windows_pruned", windows_pruned);
    trace::AddCounter("match_template.windows_abandoned", windows_abandoned);
    trace::AddCounter("match_template.jobs_pruned", jobs_pruned);
    trace::AddCounter("kernel.template_cache_hits", template_cache_hits);
  }
  best.found = best.score >= opts.present_threshold;
  return best;
}

}  // namespace bb::detect
