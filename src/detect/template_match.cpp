#include "detect/template_match.h"

#include <algorithm>
#include <cmath>

#include "imaging/transform.h"

namespace bb::detect {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;
using imaging::Rect;

IntegralMask::IntegralMask(const Bitmap& mask)
    : width_(mask.width()), height_(mask.height()),
      table_(static_cast<std::size_t>(mask.width() + 1) *
             (mask.height() + 1), 0) {
  const int w1 = width_ + 1;
  for (int y = 0; y < height_; ++y) {
    long long row_sum = 0;
    for (int x = 0; x < width_; ++x) {
      row_sum += mask(x, y) ? 1 : 0;
      table_[static_cast<std::size_t>(y + 1) * w1 + (x + 1)] =
          table_[static_cast<std::size_t>(y) * w1 + (x + 1)] + row_sum;
    }
  }
}

long long IntegralMask::Sum(const Rect& r) const {
  const Rect c = r.Intersect({0, 0, width_, height_});
  if (c.Empty()) return 0;
  const int w1 = width_ + 1;
  auto at = [&](int x, int y) {
    return table_[static_cast<std::size_t>(y) * w1 + x];
  };
  return at(c.x2(), c.y2()) - at(c.x, c.y2()) - at(c.x2(), c.y) +
         at(c.x, c.y);
}

namespace {

bool HsvMatch(const Hsv& a, const Hsv& b, const TemplateMatchOptions& o) {
  const bool a_gray = a.s < o.min_saturation;
  const bool b_gray = b.s < o.min_saturation;
  if (a_gray != b_gray) return false;
  if (a_gray) return std::fabs(a.v - b.v) <= o.value_tolerance;
  return imaging::HueDistance(a.h, b.h) <= o.hue_tolerance;
}

}  // namespace

TemplateMatchResult MatchTemplate(const Image& reconstruction,
                                  const Bitmap& coverage, const Image& templ,
                                  const TemplateMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "MatchTemplate");
  TemplateMatchResult best;
  if (templ.empty() || reconstruction.empty()) return best;

  const IntegralMask cov_integral(coverage);
  const long long frame_pixels =
      static_cast<long long>(reconstruction.pixel_count());

  // Precompute the reconstruction's HSV once.
  imaging::ImageT<Hsv> recon_hsv(reconstruction.width(),
                                 reconstruction.height());
  {
    auto pi = reconstruction.pixels();
    auto po = recon_hsv.pixels();
    for (std::size_t i = 0; i < pi.size(); ++i) {
      po[i] = imaging::RgbToHsv(pi[i]);
    }
  }

  const int stride = std::max(1, opts.window_stride);
  const int tstride = std::max(1, opts.sample_stride);

  for (double scale : opts.scales) {
    const int tw = std::max(2, static_cast<int>(templ.width() * scale));
    const int th = std::max(2, static_cast<int>(templ.height() * scale));
    if (tw > reconstruction.width() || th > reconstruction.height()) continue;
    const Image scaled = imaging::ResizeNearest(templ, tw, th);
    const long long window_area = static_cast<long long>(tw) * th;
    if (static_cast<double>(window_area) <
        opts.min_window_fraction * static_cast<double>(frame_pixels)) {
      continue;  // paper's minimum-window-size constraint
    }

    for (double rot : opts.rotations) {
      const Image rotated =
          rot == 0.0 ? scaled : imaging::Rotate(scaled, rot);
      // Template HSV samples (skip fill pixels introduced by rotation).
      struct TSample {
        int x, y;
        Hsv hsv;
      };
      std::vector<TSample> tsamples;
      for (int y = 0; y < rotated.height(); y += tstride) {
        for (int x = 0; x < rotated.width(); x += tstride) {
          if (rot != 0.0 && rotated(x, y) == imaging::Rgb8{}) continue;
          if (opts.ignore_exact_color &&
              rotated(x, y) == *opts.ignore_exact_color) {
            continue;  // canvas filler, not object
          }
          tsamples.push_back({x, y, imaging::RgbToHsv(rotated(x, y))});
        }
      }
      if (tsamples.empty()) continue;

      for (int wy = 0; wy + th <= reconstruction.height(); wy += stride) {
        for (int wx = 0; wx + tw <= reconstruction.width(); wx += stride) {
          const Rect window{wx, wy, tw, th};
          const long long recovered = cov_integral.Sum(window);
          if (static_cast<double>(recovered) <
              opts.min_recovered_fraction *
                  static_cast<double>(window_area)) {
            continue;  // paper's recovered-pixel constraint
          }
          int matched = 0, compared = 0;
          for (const auto& s : tsamples) {
            const int rx = wx + s.x, ry = wy + s.y;
            if (!coverage.InBounds(rx, ry) || !coverage(rx, ry)) continue;
            ++compared;
            matched += HsvMatch(s.hsv, recon_hsv(rx, ry), opts);
          }
          if (compared < std::max(1, opts.min_compared_samples)) continue;
          const double score =
              static_cast<double>(matched) / static_cast<double>(compared);
          if (score > best.score) {
            best.score = score;
            best.window = window;
            best.scale = scale;
            best.rotation = rot;
          }
        }
      }
    }
  }
  best.found = best.score >= opts.present_threshold;
  return best;
}

}  // namespace bb::detect
