#include "detect/template_match.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/parallel.h"
#include "common/trace.h"
#include "imaging/transform.h"

namespace bb::detect {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;
using imaging::Rect;

IntegralMask::IntegralMask(const Bitmap& mask)
    : width_(mask.width()), height_(mask.height()),
      table_(static_cast<std::size_t>(mask.width() + 1) *
             (mask.height() + 1), 0) {
  const int w1 = width_ + 1;
  for (int y = 0; y < height_; ++y) {
    long long row_sum = 0;
    for (int x = 0; x < width_; ++x) {
      row_sum += mask(x, y) ? 1 : 0;
      table_[static_cast<std::size_t>(y + 1) * w1 + (x + 1)] =
          table_[static_cast<std::size_t>(y) * w1 + (x + 1)] + row_sum;
    }
  }
}

long long IntegralMask::Sum(const Rect& r) const {
  const Rect c = r.Intersect({0, 0, width_, height_});
  if (c.Empty()) return 0;
  const int w1 = width_ + 1;
  auto at = [&](int x, int y) {
    return table_[static_cast<std::size_t>(y) * w1 + x];
  };
  return at(c.x2(), c.y2()) - at(c.x, c.y2()) - at(c.x2(), c.y) +
         at(c.x, c.y);
}

namespace {

bool HsvMatch(const Hsv& a, const Hsv& b, const TemplateMatchOptions& o) {
  const bool a_gray = a.s < o.min_saturation;
  const bool b_gray = b.s < o.min_saturation;
  if (a_gray != b_gray) return false;
  if (a_gray) return std::fabs(a.v - b.v) <= o.value_tolerance;
  return imaging::HueDistance(a.h, b.h) <= o.hue_tolerance;
}

}  // namespace

TemplateMatchResult MatchTemplate(const Image& reconstruction,
                                  const Bitmap& coverage, const Image& templ,
                                  const TemplateMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "MatchTemplate");
  const trace::ScopedTimer timer("detect.match_template");
  TemplateMatchResult best;
  if (templ.empty() || reconstruction.empty()) return best;

  const IntegralMask cov_integral(coverage);
  const long long frame_pixels =
      static_cast<long long>(reconstruction.pixel_count());

  // Precompute the reconstruction's HSV once.
  imaging::ImageT<Hsv> recon_hsv(reconstruction.width(),
                                 reconstruction.height());
  {
    auto pi = reconstruction.pixels();
    auto po = recon_hsv.pixels();
    for (std::size_t i = 0; i < pi.size(); ++i) {
      po[i] = imaging::RgbToHsv(pi[i]);
    }
  }

  const int stride = std::max(1, opts.window_stride);
  const int tstride = std::max(1, opts.sample_stride);

  // One job per (scale, rotation) pair; each sweeps its windows serially
  // and records a local best. Jobs are independent, so they run on the
  // thread pool; the final reduction below is serial and deterministic.
  struct Job {
    int scale_index;
    int rot_index;
    TemplateMatchResult local;  // found is unused at job level
    bool any = false;
    // Job-local tallies, flushed to the trace registry once the sweep is
    // done (serially, below), so counter totals never depend on how jobs
    // were scheduled across threads.
    std::uint64_t windows_scored = 0;
    std::uint64_t windows_pruned = 0;
    bool pruned_entirely = false;
  };
  std::vector<Job> jobs;
  for (int si = 0; si < static_cast<int>(opts.scales.size()); ++si) {
    for (int ri = 0; ri < static_cast<int>(opts.rotations.size()); ++ri) {
      jobs.push_back({si, ri, {}, false});
    }
  }

  common::ParallelFor(0, static_cast<std::int64_t>(jobs.size()), /*grain=*/1,
                      [&](std::int64_t j) {
    Job& job = jobs[static_cast<std::size_t>(j)];
    const double scale = opts.scales[static_cast<std::size_t>(job.scale_index)];
    // Round (not truncate) the scaled dimensions so sweeps are symmetric:
    // a 31-px template at scale 0.99 must stay 31 px, not drop to 30.
    const int tw = std::max(
        2, static_cast<int>(std::lround(templ.width() * scale)));
    const int th = std::max(
        2, static_cast<int>(std::lround(templ.height() * scale)));
    if (tw > reconstruction.width() || th > reconstruction.height()) {
      job.pruned_entirely = true;
      return;
    }
    const Image scaled = imaging::ResizeNearest(templ, tw, th);
    const long long window_area = static_cast<long long>(tw) * th;
    if (static_cast<double>(window_area) <
        opts.min_window_fraction * static_cast<double>(frame_pixels)) {
      job.pruned_entirely = true;
      return;  // paper's minimum-window-size constraint
    }

    const double rot = opts.rotations[static_cast<std::size_t>(job.rot_index)];
    // Rotation filler pixels carry no object evidence; the validity mask
    // (not a sentinel color) identifies them, so genuinely black template
    // pixels keep contributing samples.
    imaging::Bitmap rot_valid;
    const Image rotated =
        rot == 0.0 ? scaled : imaging::Rotate(scaled, rot, &rot_valid);
    struct TSample {
      int x, y;
      Hsv hsv;
    };
    std::vector<TSample> tsamples;
    for (int y = 0; y < rotated.height(); y += tstride) {
      for (int x = 0; x < rotated.width(); x += tstride) {
        if (!rot_valid.empty() && !rot_valid(x, y)) continue;
        if (opts.ignore_exact_color &&
            rotated(x, y) == *opts.ignore_exact_color) {
          continue;  // canvas filler, not object
        }
        tsamples.push_back({x, y, imaging::RgbToHsv(rotated(x, y))});
      }
    }
    if (tsamples.empty()) {
      job.pruned_entirely = true;
      return;
    }

    for (int wy = 0; wy + th <= reconstruction.height(); wy += stride) {
      for (int wx = 0; wx + tw <= reconstruction.width(); wx += stride) {
        const Rect window{wx, wy, tw, th};
        const long long recovered = cov_integral.Sum(window);
        if (static_cast<double>(recovered) <
            opts.min_recovered_fraction * static_cast<double>(window_area)) {
          ++job.windows_pruned;
          continue;  // paper's recovered-pixel constraint
        }
        int matched = 0, compared = 0;
        for (const auto& s : tsamples) {
          const int rx = wx + s.x, ry = wy + s.y;
          if (!coverage.InBounds(rx, ry) || !coverage(rx, ry)) continue;
          ++compared;
          matched += HsvMatch(s.hsv, recon_hsv(rx, ry), opts);
        }
        if (compared < std::max(1, opts.min_compared_samples)) {
          ++job.windows_pruned;
          continue;
        }
        ++job.windows_scored;
        const double score =
            static_cast<double>(matched) / static_cast<double>(compared);
        if (score > job.local.score) {
          job.local.score = score;
          job.local.window = window;
          job.local.scale = scale;
          job.local.rotation = rot;
          job.any = true;
        }
      }
    }
  });

  // Deterministic argmax: jobs are visited in (scale_index, rot_index)
  // order and each job's sweep keeps the first maximum in (wy, wx) order,
  // so with a strict `>` the winner matches the serial nested-loop scan
  // exactly - ties break toward the lowest (scale, rotation, wy, wx).
  std::uint64_t windows_scored = 0, windows_pruned = 0, jobs_pruned = 0;
  for (const Job& job : jobs) {
    windows_scored += job.windows_scored;
    windows_pruned += job.windows_pruned;
    jobs_pruned += job.pruned_entirely ? 1 : 0;
    if (job.any && job.local.score > best.score) {
      best.score = job.local.score;
      best.window = job.local.window;
      best.scale = job.local.scale;
      best.rotation = job.local.rotation;
    }
  }
  if (trace::Enabled()) {
    trace::AddCounter("match_template.windows_scored", windows_scored);
    trace::AddCounter("match_template.windows_pruned", windows_pruned);
    trace::AddCounter("match_template.jobs_pruned", jobs_pruned);
  }
  best.found = best.score >= opts.present_threshold;
  return best;
}

}  // namespace bb::detect
