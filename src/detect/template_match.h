// Template matching over partial reconstructions.
//
// Implements the paper's specific-object-tracking primitive (sec. VI): the
// object template is incrementally rotated, shifted and scaled across the
// reconstructed background; a window matches when enough of its recovered
// pixels agree in hue with the template, subject to the paper's constraints
// (minimum window size, minimum fraction of recovered pixels in the
// window, sec. VIII-D).
#pragma once

#include <optional>
#include <vector>

#include "imaging/color.h"
#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::detect {

struct TemplateMatchOptions {
  std::vector<double> scales{0.8, 1.0, 1.25};
  std::vector<double> rotations{-8.0, 0.0, 8.0};
  int window_stride = 2;     // slide step, pixels
  int sample_stride = 2;     // template pixel sampling step
  // Paper constraints: the matching window must cover at least
  // `min_window_fraction` of the frame's pixels and contain at least
  // `min_recovered_fraction` recovered pixels.
  double min_window_fraction = 0.05;
  double min_recovered_fraction = 0.5;
  // Hue tolerance for saturated pixels / value tolerance for near-gray.
  float hue_tolerance = 20.0f;
  float min_saturation = 0.15f;
  float value_tolerance = 0.22f;
  // Score threshold for declaring the object present.
  double present_threshold = 0.58;
  // Windows where fewer than this many template samples landed on
  // recovered pixels are not trusted (tiny overlaps score high by luck).
  int min_compared_samples = 24;
  // Template pixels of exactly this color are ignored: object templates are
  // rendered on a neutral canvas (synth::RenderObjectTemplate uses mid-gray)
  // and those filler pixels carry no object evidence.
  std::optional<imaging::Rgb8> ignore_exact_color =
      imaging::Rgb8{128, 128, 128};
  // Coarse-to-fine pruned search. Pruning is exact - a window is abandoned
  // only when its optimistic completion provably cannot beat the incumbent
  // under the same integer tie-break rule - so the result is bit-identical
  // to the exhaustive sweep; disable only to cross-check or benchmark.
  bool prune = true;
};

struct TemplateMatchResult {
  bool found = false;
  double score = 0.0;          // best matched fraction
  imaging::Rect window;        // best window in the reconstruction
  double scale = 1.0;
  double rotation = 0.0;
};

// Searches for `templ` in `reconstruction`, considering only pixels where
// `coverage` is set.
TemplateMatchResult MatchTemplate(const imaging::Image& reconstruction,
                                  const imaging::Bitmap& coverage,
                                  const imaging::Image& templ,
                                  const TemplateMatchOptions& opts = {});

// Summed-area table of a bitmap; Sum(r) is O(1). Used to reject windows
// failing the recovered-fraction constraint cheaply.
class IntegralMask {
 public:
  explicit IntegralMask(const imaging::Bitmap& mask);
  long long Sum(const imaging::Rect& r) const;

 private:
  int width_;
  int height_;
  std::vector<long long> table_;  // (width+1) x (height+1)
};

}  // namespace bb::detect
