#include "detect/nms.h"

#include <algorithm>

namespace bb::detect {

std::vector<Detection> NonMaxSuppression(std::vector<Detection> detections,
                                         double iou_threshold) {
  std::stable_sort(detections.begin(), detections.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
  std::vector<Detection> kept;
  for (const Detection& d : detections) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (k.cls == d.cls &&
          imaging::RectIou(k.rect, d.rect) >= iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

}  // namespace bb::detect
