#include "detect/ocr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "detect/generic.h"
#include "imaging/color.h"
#include "imaging/connected_components.h"
#include "imaging/font.h"

namespace bb::detect {

using imaging::Bitmap;
using imaging::Image;
using imaging::Rect;

namespace {

// Recognizable alphabet (everything the font provides except space, which
// segmentation handles implicitly).
const char* kAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-!?:";

struct CellState {
  // Tri-state glyph cell sampled to the 5x7 grid: 1 ink, 0 paper, -1 unknown.
  int grid[imaging::kGlyphHeight][imaging::kGlyphWidth];
  double coverage = 0.0;
};

CellState SampleCell(const Image& img, const Bitmap& coverage, int cx, int cy,
                     int scale, double ink_threshold) {
  CellState cell{};
  int known = 0, total = 0;
  for (int gy = 0; gy < imaging::kGlyphHeight; ++gy) {
    for (int gx = 0; gx < imaging::kGlyphWidth; ++gx) {
      int ink = 0, covered = 0, block = 0;
      for (int sy = 0; sy < scale; ++sy) {
        for (int sx = 0; sx < scale; ++sx) {
          const int px = cx + gx * scale + sx;
          const int py = cy + gy * scale + sy;
          if (!img.InBounds(px, py)) continue;
          ++block;
          if (!coverage(px, py)) continue;
          ++covered;
          if (imaging::Luma(img(px, py)) < ink_threshold) ++ink;
        }
      }
      ++total;
      if (block == 0 || covered < std::max(1, block / 3)) {
        cell.grid[gy][gx] = -1;
      } else {
        ++known;
        cell.grid[gy][gx] = (2 * ink > covered) ? 1 : 0;
      }
    }
  }
  cell.coverage = total > 0 ? static_cast<double>(known) / total : 0.0;
  return cell;
}

// Correlation of a sampled cell against one glyph: fraction of known grid
// positions that agree.
double GlyphScore(const CellState& cell, const Bitmap& glyph) {
  int agree = 0, known = 0;
  for (int gy = 0; gy < imaging::kGlyphHeight; ++gy) {
    for (int gx = 0; gx < imaging::kGlyphWidth; ++gx) {
      if (cell.grid[gy][gx] < 0) continue;
      ++known;
      const int want = glyph(gx, gy) ? 1 : 0;
      agree += (cell.grid[gy][gx] == want);
    }
  }
  return known > 0 ? static_cast<double>(agree) / known : 0.0;
}

}  // namespace

OcrResult ReadTextRegion(const Image& reconstruction, const Bitmap& coverage,
                         const Rect& region, const OcrOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "ReadTextRegion");
  OcrResult out;
  const Rect r = region.Intersect(
      {0, 0, reconstruction.width(), reconstruction.height()});
  if (r.Empty()) return out;

  // Bright mass of the region -> ink threshold.
  double luma_sum = 0.0;
  int n = 0;
  for (int y = r.y; y < r.y2(); ++y) {
    for (int x = r.x; x < r.x2(); ++x) {
      if (!coverage(x, y)) continue;
      luma_sum += imaging::Luma(reconstruction(x, y));
      ++n;
    }
  }
  if (n < 8) return out;
  const double ink_threshold = luma_sum / n - opts.ink_luma_margin;

  // Ink mask of the region. Glyph geometry (scale, text line) is estimated
  // from the connected ink components, which makes the reader robust to
  // non-text dark features in the region (shadows, edges, decorations).
  imaging::Bitmap ink(reconstruction.width(), reconstruction.height());
  for (int y = r.y; y < r.y2(); ++y) {
    for (int x = r.x; x < r.x2(); ++x) {
      if (!coverage(x, y)) continue;
      if (imaging::Luma(reconstruction(x, y)) < ink_threshold) {
        ink(x, y) = imaging::kMaskSet;
      }
    }
  }
  const auto labeling = imaging::LabelComponents(
      ink, imaging::Connectivity::kEight);
  // Glyph-like components: taller than a speck or an edge line, not huge.
  std::vector<const imaging::Component*> glyph_comps;
  std::vector<int> heights;
  for (const auto& comp : labeling.components) {
    if (comp.bbox.h < 3 || comp.bbox.h > r.h * 3 / 4) continue;
    if (comp.bbox.w > r.w / 2) continue;  // full-width rule/edge, not a glyph
    glyph_comps.push_back(&comp);
    heights.push_back(comp.bbox.h);
  }
  if (glyph_comps.empty()) return out;
  std::nth_element(heights.begin(), heights.begin() + heights.size() / 2,
                   heights.end());
  const int median_h = heights[heights.size() / 2];
  const int scale = std::max(
      1, static_cast<int>(std::lround(
             median_h / static_cast<double>(imaging::kGlyphHeight))));
  const int advance = (imaging::kGlyphWidth + 1) * scale;

  // Text line anchor: leftmost/topmost of the glyph-like components whose
  // height is close to the median (a single line is assumed).
  int ix0 = r.x2(), iy0 = r.y2(), ix1 = r.x - 1;
  for (const auto* comp : glyph_comps) {
    if (std::abs(comp->bbox.h - median_h) > median_h / 2 + 1) continue;
    ix0 = std::min(ix0, comp->bbox.x);
    iy0 = std::min(iy0, comp->bbox.y);
    ix1 = std::max(ix1, comp->bbox.x2() - 1);
  }
  if (ix1 < ix0) return out;

  // Precompute glyph bitmaps.
  std::vector<std::pair<char, Bitmap>> glyphs;
  for (const char* p = kAlphabet; *p; ++p) {
    glyphs.emplace_back(*p, imaging::GlyphBitmap(*p));
  }

  double conf_sum = 0.0;
  int conf_n = 0;
  for (int cx = ix0; cx + imaging::kGlyphWidth * scale <= ix1 + scale &&
                     static_cast<int>(out.text.size()) < opts.max_chars;
       cx += advance) {
    const CellState cell =
        SampleCell(reconstruction, coverage, cx, iy0, scale, ink_threshold);
    if (cell.coverage < opts.min_cell_coverage) {
      out.text.push_back('?');
      continue;
    }
    // A fully recovered cell without any ink is an inter-word space.
    bool any_ink = false;
    for (int gy = 0; gy < imaging::kGlyphHeight && !any_ink; ++gy) {
      for (int gx = 0; gx < imaging::kGlyphWidth; ++gx) {
        if (cell.grid[gy][gx] == 1) {
          any_ink = true;
          break;
        }
      }
    }
    if (!any_ink) {
      out.text.push_back(' ');
      continue;
    }
    char best_char = '?';
    double best_score = 0.0;
    for (const auto& [c, glyph] : glyphs) {
      const double s = GlyphScore(cell, glyph);
      if (s > best_score) {
        best_score = s;
        best_char = c;
      }
    }
    if (best_score >= opts.min_glyph_score) {
      out.text.push_back(best_char);
      ++out.readable_chars;
      conf_sum += best_score;
      ++conf_n;
    } else {
      out.text.push_back('?');
    }
  }
  // Trim trailing unknowns and spaces.
  while (!out.text.empty() &&
         (out.text.back() == '?' || out.text.back() == ' ')) {
    out.text.pop_back();
  }
  out.mean_confidence = conf_n > 0 ? conf_sum / conf_n : 0.0;
  return out;
}

std::vector<TextDetection> DetectText(const Image& reconstruction,
                                      const Bitmap& coverage,
                                      const OcrOptions& opts) {
  std::vector<TextDetection> out;
  const auto detections = DetectObjects(reconstruction, coverage);
  for (const Detection& d : detections) {
    if (d.cls != ObjectClass::kStickyNote && d.cls != ObjectClass::kPoster) {
      continue;
    }
    OcrResult r = ReadTextRegion(reconstruction, coverage,
                                 d.rect.Inflated(1), opts);
    if (r.readable_chars > 0) {
      out.push_back({d.rect, std::move(r)});
    }
  }
  return out;
}

double CharacterAccuracy(const std::string& truth,
                         const std::string& recognized) {
  if (truth.empty()) return recognized.empty() ? 1.0 : 0.0;
  const std::size_t n = std::max(truth.size(), recognized.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size() && i < recognized.size(); ++i) {
    const char a = static_cast<char>(
        std::toupper(static_cast<unsigned char>(truth[i])));
    const char b = static_cast<char>(
        std::toupper(static_cast<unsigned char>(recognized[i])));
    correct += (a == b);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace bb::detect
