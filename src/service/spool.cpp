#include "service/spool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

namespace bb::service {

namespace {

namespace fs = std::filesystem;

const char* const kStateDirs[] = {kIncomingDir, kQueuedDir, kRunningDir,
                                  kDoneDir, kFailedDir};

// Duplicate-resolution precedence: a job visible in two directories (the
// crash window of MoveJob) keeps its most-advanced copy. Higher wins.
int Precedence(const char* dir) {
  if (std::strcmp(dir, kDoneDir) == 0) return 4;
  if (std::strcmp(dir, kFailedDir) == 0) return 3;
  if (std::strcmp(dir, kRunningDir) == 0) return 2;
  if (std::strcmp(dir, kQueuedDir) == 0) return 1;
  return 0;  // incoming
}

Status IoError(const std::string& what, const std::error_code& ec) {
  return Status(StatusCode::kIoError, what + ": " + ec.message());
}

}  // namespace

Status EnsureSpool(const std::string& root) {
  std::error_code ec;
  for (const char* dir : kStateDirs) {
    fs::create_directories(fs::path(root) / dir, ec);
    if (ec) return IoError("create spool dir " + std::string(dir), ec);
  }
  fs::create_directories(fs::path(root) / kWorkDir, ec);
  if (ec) return IoError("create spool work dir", ec);
  return OkStatus();
}

std::string JobPath(const std::string& root, const char* dir,
                    std::uint64_t id) {
  return (fs::path(root) / dir / (std::to_string(id) + ".bbjb")).string();
}

Result<std::vector<std::uint64_t>> ListJobs(const std::string& root,
                                            const char* dir) {
  std::error_code ec;
  fs::directory_iterator it(fs::path(root) / dir, ec);
  if (ec) return IoError("list spool dir " + std::string(dir), ec);
  std::vector<std::uint64_t> ids;
  for (const fs::directory_entry& entry : it) {
    const fs::path& p = entry.path();
    if (p.extension() != ".bbjb") continue;
    const std::string stem = p.stem().string();
    if (stem.empty() ||
        stem.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(stem.c_str(), &end, 10);
    if (errno != 0 || end == stem.c_str() || *end != '\0') continue;
    ids.push_back(static_cast<std::uint64_t>(id));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status MoveJob(const JobRecord& job, const std::string& root,
               const char* from, const char* to) {
  if (const Status sealed = SaveJob(job, JobPath(root, to, job.id));
      !sealed.ok()) {
    return sealed.WithContext("spool move " + std::string(from) + " -> " +
                              std::string(to));
  }
  std::error_code ec;
  fs::remove(JobPath(root, from, job.id), ec);
  if (ec) {
    return IoError("unlink " + std::string(from) + "/" +
                       std::to_string(job.id) + ".bbjb after move",
                   ec);
  }
  return OkStatus();
}

Result<RecoveryReport> RecoverSpool(const std::string& root) {
  if (const Status ready = EnsureSpool(root); !ready.ok()) return ready;
  RecoveryReport report;

  // Pass 1: for every id, find its highest-precedence copy and unlink the
  // rest (they are crash-window leftovers of an interrupted MoveJob).
  struct Best {
    const char* dir;
    int precedence;
  };
  std::vector<std::pair<std::uint64_t, Best>> best;
  for (const char* dir : kStateDirs) {
    const Result<std::vector<std::uint64_t>> ids = ListJobs(root, dir);
    if (!ids.ok()) return ids.status();
    for (std::uint64_t id : *ids) {
      auto found =
          std::find_if(best.begin(), best.end(),
                       [id](const auto& entry) { return entry.first == id; });
      if (found == best.end()) {
        best.push_back({id, {dir, Precedence(dir)}});
        continue;
      }
      const char* loser =
          Precedence(dir) > found->second.precedence ? found->second.dir : dir;
      if (Precedence(dir) > found->second.precedence) {
        found->second = {dir, Precedence(dir)};
      }
      std::error_code ec;
      fs::remove(JobPath(root, loser, id), ec);
      if (ec) return IoError("drop duplicate job record", ec);
      ++report.duplicates_dropped;
    }
  }

  // Pass 2: running/ records belonged to a supervisor that no longer
  // exists (this function runs before any worker is spawned) — requeue
  // them. Their work/<id>/ scratch survives, so the retried attempt
  // resumes from its shard checkpoints instead of starting over.
  for (auto& [id, where] : best) {
    if (std::strcmp(where.dir, kRunningDir) != 0) continue;
    Result<JobRecord> job = LoadJob(JobPath(root, kRunningDir, id));
    if (!job.ok()) {
      // Unreadable running record: quarantine the bytes, don't wedge
      // recovery. The job is lost but the daemon still starts.
      std::error_code ec;
      fs::rename(JobPath(root, kRunningDir, id),
                 JobPath(root, kFailedDir, id) + ".corrupt", ec);
      if (ec) return IoError("quarantine unreadable running record", ec);
      continue;
    }
    job->state = JobState::kQueued;
    if (const Status moved = MoveJob(*job, root, kRunningDir, kQueuedDir);
        !moved.ok()) {
      return moved;
    }
    ++report.requeued;
  }
  return report;
}

Result<std::uint64_t> NextJobId(const std::string& root) {
  std::uint64_t max_id = 0;
  for (const char* dir : kStateDirs) {
    const Result<std::vector<std::uint64_t>> ids = ListJobs(root, dir);
    if (!ids.ok()) return ids.status();
    if (!ids->empty()) max_id = std::max(max_id, ids->back());
  }
  return max_id + 1;
}

}  // namespace bb::service
