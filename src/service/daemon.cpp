#include "service/daemon.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/faultinject.h"
#include "common/trace.h"
#include "service/spool.h"

namespace bb::service {

namespace {

namespace fs = std::filesystem;

// Worker exit-code contract (see DESIGN.md section 16):
//   0  success
//   2  usage error - the job spec itself is unrunnable; never retried
//   3  interrupted with checkpoint sealed - resumable; consumes no
//      attempt budget
// Anything else (including -SIGNUM for signal deaths) is retryable.
constexpr int kExitUsage = 2;
constexpr int kExitInterrupted = 3;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string ShardStem(const JobRecord& job, int shard) {
  return "shard" + std::to_string(shard) + "of" +
         std::to_string(job.spec.shards);
}

std::string WorkDirOf(const std::string& root, std::uint64_t id) {
  return (fs::path(root) / kWorkDir / std::to_string(id)).string();
}

// One live subprocess under supervision.
struct Worker {
  pid_t pid = -1;
  int shard = -1;  // -1 = the reducer
};

// Launches `argv` with stdout+stderr appended to `log_path`. The "spawn"
// fault point fires here (occurrence-keyed, any kind = launch failure) so
// chaos schedules can exercise the retry path without a broken binary.
Result<pid_t> Spawn(const std::vector<std::string>& argv,
                    const std::string& log_path) {
  if (faultinject::Enabled() &&
      faultinject::At("spawn", faultinject::NextCount("spawn"))) {
    if (trace::Enabled()) trace::AddCounter("fault.injected.spawn", 1);
    return Status(StatusCode::kIoError, "injected spawn failure");
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status(StatusCode::kIoError, "fork failed for " + argv.front());
  }
  if (pid == 0) {
    const int log = ::open(log_path.c_str(),
                           O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; reaped as a retryable attempt failure
  }
  return pid;
}

// Blocking reap of one worker; exit status for normal exits, -SIGNUM for
// signal deaths, 127-ish codes pass through.
int Reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

// Non-blocking: true (and the decoded code) when `pid` has exited.
bool TryReap(pid_t pid, int* code) {
  int status = 0;
  const pid_t got = ::waitpid(pid, &status, WNOHANG);
  if (got != pid) return false;
  if (WIFEXITED(status)) {
    *code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    *code = -WTERMSIG(status);
  } else {
    *code = -1;
  }
  return true;
}

void SignalAll(const std::vector<Worker>& live, int signum) {
  for (const Worker& w : live) {
    if (w.pid > 0) ::kill(w.pid, signum);
  }
}

}  // namespace

Status Daemon::Run() {
  if (const Status ready = EnsureSpool(opts_.spool_root); !ready.ok()) {
    return ready;
  }
  // Single-instance advisory lock: two daemons racing one spool would
  // double-run jobs.
  const std::string lock_path =
      (fs::path(opts_.spool_root) / "daemon.lock").string();
  const int lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (lock_fd < 0) {
    return Status(StatusCode::kIoError, "cannot open " + lock_path);
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd);
    return Status(StatusCode::kFailedPrecondition,
                  "another attackd already owns spool " + opts_.spool_root +
                      " (daemon.lock is held)");
  }

  {
    trace::ScopedTimer recover_timer("service.recover");
    const Result<RecoveryReport> recovered = RecoverSpool(opts_.spool_root);
    if (!recovered.ok()) {
      ::close(lock_fd);
      return recovered.status();
    }
    stats_.jobs_requeued += recovered->requeued;
    if (trace::Enabled() && recovered->requeued > 0) {
      trace::AddCounter("service.jobs_requeued",
                        static_cast<std::uint64_t>(recovered->requeued));
    }
  }

  Status result = OkStatus();
  while (true) {
    if (opts_.drain != nullptr &&
        opts_.drain->load(std::memory_order_relaxed)) {
      break;
    }
    if (const Status admitted = Admit(); !admitted.ok()) {
      result = admitted;
      break;
    }
    const Result<std::vector<std::uint64_t>> queued =
        ListJobs(opts_.spool_root, kQueuedDir);
    if (!queued.ok()) {
      result = queued.status();
      break;
    }
    if (queued->empty()) {
      if (opts_.drain_once) break;
      SleepMs(opts_.poll_ms);
      continue;
    }

    const std::uint64_t id = queued->front();
    Result<JobRecord> job = LoadJob(JobPath(opts_.spool_root, kQueuedDir, id));
    if (!job.ok()) {
      // A queued record the daemon itself sealed went unreadable
      // (injected spool fault or real corruption): quarantine the bytes
      // so the queue never wedges on it.
      std::error_code ec;
      fs::rename(JobPath(opts_.spool_root, kQueuedDir, id),
                 JobPath(opts_.spool_root, kFailedDir, id) + ".corrupt", ec);
      if (ec) {
        result = Status(StatusCode::kIoError,
                        "cannot quarantine unreadable queued job " +
                            std::to_string(id));
        break;
      }
      ++stats_.jobs_failed;
      if (trace::Enabled()) trace::AddCounter("service.jobs_failed", 1);
      continue;
    }
    job->state = JobState::kRunning;
    if (const Status moved =
            MoveJob(*job, opts_.spool_root, kQueuedDir, kRunningDir);
        !moved.ok()) {
      result = moved;
      break;
    }
    const Result<JobOutcome> outcome = RunJob(&*job);
    if (!outcome.ok()) {
      result = outcome.status();
      break;
    }
    if (*outcome == JobOutcome::kDrained) break;
  }

  ::flock(lock_fd, LOCK_UN);
  ::close(lock_fd);
  return result;
}

Status Daemon::Admit() {
  const Result<std::vector<std::uint64_t>> incoming =
      ListJobs(opts_.spool_root, kIncomingDir);
  if (!incoming.ok()) return incoming.status();
  for (const std::uint64_t id : *incoming) {
    const std::string in_path = JobPath(opts_.spool_root, kIncomingDir, id);
    Result<JobRecord> job = LoadJob(in_path);

    const auto refuse = [&](JobRecord refused, const std::string& reason)
        -> Status {
      refused.id = id;
      refused.state = JobState::kFailed;
      refused.final_reason = reason;
      if (const Status moved =
              MoveJob(refused, opts_.spool_root, kIncomingDir, kFailedDir);
          !moved.ok()) {
        return moved;
      }
      ++stats_.jobs_refused;
      if (trace::Enabled()) trace::AddCounter("service.jobs_refused", 1);
      return OkStatus();
    };

    if (!job.ok()) {
      // Hostile or damaged submission. The record's own claims are
      // untrusted, so the refusal carries a placeholder spec (which is
      // what makes the failed/ record loadable for `attackctl status`).
      JobRecord placeholder;
      placeholder.spec.input = "(unreadable submission)";
      placeholder.spec.output = "(unreadable submission)";
      if (const Status refused =
              refuse(placeholder,
                     "INVALID_JOB_RECORD: " + job.status().ToString());
          !refused.ok()) {
        return refused;
      }
      continue;
    }

    std::error_code ec;
    if (!fs::exists(job->spec.input, ec) || ec) {
      if (const Status refused =
              refuse(*job, "NOT_FOUND: job input " + job->spec.input +
                               " does not exist");
          !refused.ok()) {
        return refused;
      }
      continue;
    }

    const Result<std::vector<std::uint64_t>> queued =
        ListJobs(opts_.spool_root, kQueuedDir);
    if (!queued.ok()) return queued.status();
    const Result<std::vector<std::uint64_t>> running =
        ListJobs(opts_.spool_root, kRunningDir);
    if (!running.ok()) return running.status();
    const int depth =
        static_cast<int>(queued->size()) + static_cast<int>(running->size());
    if (depth >= opts_.queue_depth) {
      if (const Status refused = refuse(
              *job, "RESOURCE_EXHAUSTED: queue depth " +
                        std::to_string(opts_.queue_depth) + " is full (" +
                        std::to_string(depth) + " jobs queued or running)");
          !refused.ok()) {
        return refused;
      }
      continue;
    }

    job->state = JobState::kQueued;
    if (const Status moved =
            MoveJob(*job, opts_.spool_root, kIncomingDir, kQueuedDir);
        !moved.ok()) {
      return moved;
    }
    ++stats_.jobs_admitted;
    if (trace::Enabled()) trace::AddCounter("service.jobs_admitted", 1);
  }
  return OkStatus();
}

Result<Daemon::JobOutcome> Daemon::RunJob(JobRecord* job) {
  const std::string workdir = WorkDirOf(opts_.spool_root, job->id);
  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) {
    return Status(StatusCode::kIoError,
                  "cannot create job workdir " + workdir);
  }

  const auto finish = [&](JobState state, const std::string& reason,
                          JobOutcome outcome) -> Result<JobOutcome> {
    job->state = state;
    job->final_reason = reason;
    const char* dest = state == JobState::kDone ? kDoneDir : kFailedDir;
    if (state == JobState::kQueued) dest = kQueuedDir;
    if (const Status moved =
            MoveJob(*job, opts_.spool_root, kRunningDir, dest);
        !moved.ok()) {
      return moved;
    }
    if (trace::Enabled()) {
      if (state == JobState::kDone) {
        trace::AddCounter("service.jobs_done", 1);
      } else if (state == JobState::kFailed) {
        trace::AddCounter("service.jobs_failed", 1);
      }
    }
    if (state == JobState::kDone) ++stats_.jobs_done;
    if (state == JobState::kFailed) ++stats_.jobs_failed;
    return outcome;
  };

  // Attempts that exited kExitInterrupted (drain) consume no budget.
  const auto spent = [job] {
    int n = 0;
    for (const JobAttempt& a : job->attempts) {
      if (a.exit_code != 0 && a.exit_code != kExitInterrupted) ++n;
    }
    return n;
  };

  while (spent() < job->spec.max_attempts) {
    const int delay_ms = BackoffDelayMs(job->spec, spent());
    if (delay_ms > 0) {
      // Interruptible backoff sleep: a drain request must not wait out
      // the whole schedule.
      const double until =
          trace::MonotonicSeconds() + static_cast<double>(delay_ms) / 1000.0;
      while (trace::MonotonicSeconds() < until) {
        if (opts_.drain != nullptr &&
            opts_.drain->load(std::memory_order_relaxed)) {
          return finish(JobState::kQueued, "", JobOutcome::kDrained);
        }
        SleepMs(opts_.poll_ms);
      }
    }
    if (spent() > 0) {
      ++stats_.retries;
      if (trace::Enabled()) trace::AddCounter("service.retries", 1);
    }

    trace::ScopedTimer attempt_timer("service.attempt");
    JobAttempt attempt;
    attempt.delay_ms = delay_ms;

    // Shards whose sealed partial already exists (an earlier attempt or a
    // pre-crash daemon finished them) are skipped outright; the rest
    // resume from their own checkpoints.
    std::vector<int> pending;
    std::vector<std::string> partials;
    for (int shard = 0; shard < job->spec.shards; ++shard) {
      const std::string partial =
          (fs::path(workdir) / (ShardStem(*job, shard) + ".bbpr")).string();
      partials.push_back(partial);
      if (!fs::exists(partial, ec) || ec) pending.push_back(shard);
    }

    const double attempt_start = trace::MonotonicSeconds();
    const double deadline =
        job->spec.deadline_ms > 0
            ? attempt_start + static_cast<double>(job->spec.deadline_ms) /
                                  1000.0
            : 0.0;
    std::vector<Worker> live;
    bool draining = false;
    bool timed_out = false;
    int first_bad_code = 0;
    std::string first_bad_reason;
    std::size_t next_pending = 0;

    const auto fail_fast = [&](int code, const std::string& reason) {
      if (first_bad_code == 0) {
        first_bad_code = code;
        first_bad_reason = reason;
      }
      // Stop the siblings gently; they seal checkpoints and exit 3.
      SignalAll(live, SIGTERM);
    };

    while (!live.empty() || (next_pending < pending.size() &&
                             first_bad_code == 0 && !draining &&
                             !timed_out)) {
      if (!draining && opts_.drain != nullptr &&
          opts_.drain->load(std::memory_order_relaxed)) {
        draining = true;
        SignalAll(live, SIGTERM);
      }
      if (!timed_out && deadline > 0.0 &&
          trace::MonotonicSeconds() > deadline) {
        timed_out = true;
        ++stats_.worker_timeouts;
        if (trace::Enabled()) {
          trace::AddCounter("service.worker_timeouts", 1);
        }
        SignalAll(live, SIGKILL);
      }

      // Reap.
      for (std::size_t i = 0; i < live.size();) {
        int code = 0;
        if (!TryReap(live[i].pid, &code)) {
          ++i;
          continue;
        }
        const int shard = live[i].shard;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        if (code != 0 && code != kExitInterrupted && !timed_out &&
            !draining) {
          fail_fast(code, "shard " + std::to_string(shard) + " exited " +
                              std::to_string(code) + " (see " + workdir +
                              "/" + ShardStem(*job, shard) + ".log)");
        }
      }

      // Launch.
      while (!draining && !timed_out && first_bad_code == 0 &&
             next_pending < pending.size() &&
             static_cast<int>(live.size()) < opts_.max_workers) {
        const int shard = pending[next_pending];
        const std::string stem = ShardStem(*job, shard);
        std::vector<std::string> argv = {
            opts_.worker_bin,
            "attack",
            "--in", job->spec.input,
            "--stream",
            "--window", std::to_string(job->spec.window),
            "--shard",
            std::to_string(shard) + "/" + std::to_string(job->spec.shards),
            "--checkpoint", (fs::path(workdir) / (stem + ".bbck")).string(),
            "--partial-out", partials[static_cast<std::size_t>(shard)],
        };
        if (!job->spec.vb.empty()) {
          argv.insert(argv.end(), {"--vb", job->spec.vb});
        }
        if (job->spec.phi > 0.0) {
          argv.insert(argv.end(), {"--phi", std::to_string(job->spec.phi)});
        }
        if (!job->spec.max_bad_frames.empty()) {
          argv.insert(argv.end(),
                      {"--max-bad-frames", job->spec.max_bad_frames});
        }
        if (job->spec.threads > 0) {
          argv.insert(argv.end(),
                      {"--threads", std::to_string(job->spec.threads)});
        }
        const Result<pid_t> pid =
            Spawn(argv, (fs::path(workdir) / (stem + ".log")).string());
        ++next_pending;
        if (!pid.ok()) {
          fail_fast(127, "shard " + std::to_string(shard) +
                             " failed to launch: " + pid.status().message());
          break;
        }
        ++stats_.workers_spawned;
        if (trace::Enabled()) {
          trace::AddCounter("service.workers_spawned", 1);
        }
        live.push_back({*pid, shard});
      }

      if (!live.empty()) SleepMs(opts_.poll_ms);
    }

    if (draining) {
      attempt.exit_code = kExitInterrupted;
      attempt.reason = "drained: workers checkpointed and exited on SIGTERM";
      job->attempts.push_back(attempt);
      return finish(JobState::kQueued, "", JobOutcome::kDrained);
    }
    if (timed_out) {
      attempt.exit_code = -SIGKILL;
      attempt.reason = "watchdog: attempt exceeded deadline of " +
                       std::to_string(job->spec.deadline_ms) + " ms";
      job->attempts.push_back(attempt);
      if (const Status saved = SaveJob(
              *job, JobPath(opts_.spool_root, kRunningDir, job->id));
          !saved.ok()) {
        return saved;
      }
      continue;
    }
    if (first_bad_code != 0) {
      attempt.exit_code = first_bad_code;
      attempt.reason = first_bad_reason;
      job->attempts.push_back(attempt);
      if (first_bad_code == kExitUsage) {
        return finish(JobState::kFailed,
                      "INVALID_ARGUMENT: worker rejected the job spec: " +
                          first_bad_reason,
                      JobOutcome::kFailed);
      }
      if (const Status saved = SaveJob(
              *job, JobPath(opts_.spool_root, kRunningDir, job->id));
          !saved.ok()) {
        return saved;
      }
      continue;
    }

    // Every shard partial is sealed; merge. The reducer runs under the
    // same supervision contract as the shards.
    {
      trace::ScopedTimer reduce_timer("service.reduce");
      std::string csv;
      for (const std::string& p : partials) {
        if (!csv.empty()) csv += ',';
        csv += p;
      }
      const std::vector<std::string> argv = {
          opts_.worker_bin, "reduce", "--in", csv, "--out", job->spec.output,
      };
      const Result<pid_t> pid =
          Spawn(argv, (fs::path(workdir) / "reduce.log").string());
      if (!pid.ok()) {
        attempt.exit_code = 127;
        attempt.reason = "reduce failed to launch: " + pid.status().message();
        job->attempts.push_back(attempt);
        if (const Status saved = SaveJob(
                *job, JobPath(opts_.spool_root, kRunningDir, job->id));
            !saved.ok()) {
          return saved;
        }
        continue;
      }
      ++stats_.workers_spawned;
      if (trace::Enabled()) trace::AddCounter("service.workers_spawned", 1);
      const int code = Reap(*pid);
      if (code != 0) {
        attempt.exit_code = code;
        attempt.reason = "reduce exited " + std::to_string(code) + " (see " +
                         workdir + "/reduce.log)";
        job->attempts.push_back(attempt);
        if (code == kExitUsage) {
          return finish(JobState::kFailed,
                        "INVALID_ARGUMENT: reduce rejected the partials: " +
                            attempt.reason,
                        JobOutcome::kFailed);
        }
        if (const Status saved = SaveJob(
                *job, JobPath(opts_.spool_root, kRunningDir, job->id));
            !saved.ok()) {
          return saved;
        }
        continue;
      }
    }

    attempt.exit_code = 0;
    job->attempts.push_back(attempt);
    return finish(JobState::kDone, "", JobOutcome::kDone);
  }

  const std::string last = job->attempts.empty()
                               ? std::string("(no attempts recorded)")
                               : job->attempts.back().reason;
  return finish(JobState::kFailed,
                "RETRY_EXHAUSTED: " + std::to_string(job->spec.max_attempts) +
                    " attempt(s) failed; last: " + last,
                JobOutcome::kFailed);
}

}  // namespace bb::service
