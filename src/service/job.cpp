#include "service/job.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/faultinject.h"
#include "common/fileio.h"
#include "common/trace.h"
#include "core/wire.h"

namespace bb::service {

namespace {

namespace wire = bb::core::wire;

constexpr char kMagic[4] = {'B', 'B', 'J', 'B'};
constexpr std::uint32_t kVersion = 1;

// Plausibility ceilings for hostile loads. Generous for real jobs, tight
// enough that a corrupt length field cannot make the loader allocate or
// scan gigabytes.
constexpr std::uint32_t kMaxStringBytes = 4096;
constexpr std::uint32_t kMaxAttemptRecords = 1000;
constexpr int kMaxShardFanout = 256;   // matches cli::kMaxShardCount
constexpr int kMaxAttemptBudget = 100;
constexpr int kMaxBackoffMs = 3600 * 1000;
constexpr int kMaxDeadlineMs = 24 * 3600 * 1000;
constexpr int kBackoffCapMs = 60 * 1000;

Status Corrupt(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

void PutString(std::string* out, const std::string& s) {
  wire::PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

// Bounded string read: length-prefixed, capped, with the offending byte
// range named on rejection.
bool TakeString(wire::Reader* r, std::string* out, Status* error,
                const char* field) {
  const std::size_t at = r->pos;
  std::uint32_t len = 0;
  if (!r->TakeU32(&len)) {
    *error = Corrupt(std::string("truncated ") + field + " length at byte " +
                     std::to_string(at));
    return false;
  }
  if (len > kMaxStringBytes) {
    *error = Corrupt(std::string("implausible ") + field + " length " +
                     std::to_string(len) + " at bytes " + std::to_string(at) +
                     "-" + std::to_string(at + 3) + " (cap " +
                     std::to_string(kMaxStringBytes) + ")");
    return false;
  }
  if (r->pos + len > r->bytes.size()) {
    *error = Corrupt(std::string("truncated ") + field + " at byte " +
                     std::to_string(r->pos));
    return false;
  }
  out->assign(r->bytes, r->pos, len);
  r->pos += len;
  return true;
}

}  // namespace

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

int BackoffDelayMs(const JobSpec& spec, int attempt) {
  if (attempt <= 0 || spec.backoff_ms <= 0) return 0;
  long delay = spec.backoff_ms;
  for (int k = 1; k < attempt && delay < kBackoffCapMs; ++k) delay *= 2;
  return static_cast<int>(delay < kBackoffCapMs ? delay : kBackoffCapMs);
}

Status ValidateSpec(const JobSpec& spec) {
  const auto invalid = [](const std::string& why) {
    return Status(StatusCode::kInvalidArgument, why);
  };
  if (spec.input.empty()) return invalid("job input path is empty");
  if (spec.output.empty()) return invalid("job output base is empty");
  for (const auto& [name, value] :
       {std::pair<const char*, const std::string&>{"input", spec.input},
        {"output", spec.output},
        {"vb", spec.vb},
        {"max-bad-frames", spec.max_bad_frames}}) {
    if (value.size() > kMaxStringBytes) {
      return invalid(std::string("job ") + name + " longer than " +
                     std::to_string(kMaxStringBytes) + " bytes");
    }
  }
  if (spec.window < 1) return invalid("job window must be >= 1");
  if (spec.shards < 1 || spec.shards > kMaxShardFanout) {
    return invalid("job shards must be in [1, " +
                   std::to_string(kMaxShardFanout) + "], got " +
                   std::to_string(spec.shards));
  }
  if (spec.threads < 0) return invalid("job threads must be >= 0");
  if (spec.max_attempts < 1 || spec.max_attempts > kMaxAttemptBudget) {
    return invalid("job max-attempts must be in [1, " +
                   std::to_string(kMaxAttemptBudget) + "], got " +
                   std::to_string(spec.max_attempts));
  }
  if (spec.backoff_ms < 0 || spec.backoff_ms > kMaxBackoffMs) {
    return invalid("job backoff-ms out of range");
  }
  if (spec.deadline_ms < 0 || spec.deadline_ms > kMaxDeadlineMs) {
    return invalid("job deadline-ms out of range");
  }
  if (!(spec.phi >= 0.0) || spec.phi > 1000.0) {
    return invalid("job phi out of range");
  }
  return OkStatus();
}

Status SaveJob(const JobRecord& job, const std::string& path) {
  std::string out;
  out.reserve(128 + job.spec.input.size() + job.spec.output.size());
  out.append(kMagic, 4);
  wire::PutU32(&out, kVersion);
  wire::PutU64(&out, job.id);
  wire::PutU32(&out, static_cast<std::uint32_t>(job.state));
  wire::PutF64(&out, job.spec.phi);
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.window));
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.shards));
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.threads));
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.max_attempts));
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.backoff_ms));
  wire::PutU32(&out, static_cast<std::uint32_t>(job.spec.deadline_ms));
  PutString(&out, job.spec.input);
  PutString(&out, job.spec.output);
  PutString(&out, job.spec.vb);
  PutString(&out, job.spec.max_bad_frames);
  PutString(&out, job.final_reason);
  wire::PutU32(&out, static_cast<std::uint32_t>(job.attempts.size()));
  for (const JobAttempt& a : job.attempts) {
    wire::PutU32(&out, static_cast<std::uint32_t>(a.delay_ms));
    wire::PutU32(&out,
                 static_cast<std::uint32_t>(static_cast<std::int32_t>(
                     a.exit_code)));
    PutString(&out, a.reason);
  }
  wire::PutU64(&out, wire::Fnv1a64(out));
  return common::AtomicWriteFile(out, path, "job");
}

Result<JobRecord> LoadJob(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status(StatusCode::kNotFound, "no job file")
        .WithContext("job " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  const auto reject = [&path](const Status& status) {
    return status.WithContext("job " + path);
  };

  // Injected spool faults: the bytes went bad between the sealed write and
  // this read. Occurrence-keyed, so a schedule names "the K-th record load
  // this daemon performs" deterministically.
  if (faultinject::Enabled()) {
    if (const auto kind =
            faultinject::At("spool", faultinject::NextCount("spool"))) {
      if (trace::Enabled()) trace::AddCounter("fault.injected.spool", 1);
      switch (*kind) {
        case faultinject::FaultKind::kFail:
          return reject(
              Status(StatusCode::kIoError, "injected spool read failure"));
        case faultinject::FaultKind::kTruncate:
          bytes.resize(bytes.size() / 2);
          break;
        case faultinject::FaultKind::kCorrupt:
          if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x20;
          break;
      }
    }
  }

  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return reject(Corrupt("bad magic at bytes 0-3 (want BBJB)"));
  }
  if (bytes.size() < 4 + 4 + 8) {
    return reject(Corrupt("truncated before the checksum"));
  }
  // Checksum first: no field below is trusted until the seal verifies.
  {
    const std::string sealed = bytes.substr(0, bytes.size() - 8);
    wire::Reader tail{bytes, bytes.size() - 8};
    std::uint64_t stored = 0;
    (void)tail.TakeU64(&stored);
    if (wire::Fnv1a64(sealed) != stored) {
      return reject(Corrupt("checksum mismatch over bytes 0-" +
                            std::to_string(bytes.size() - 9) +
                            " (record is corrupt or truncated)"));
    }
  }
  const std::string body = bytes.substr(0, bytes.size() - 8);
  wire::Reader r{body, 4};

  std::uint32_t version = 0;
  if (!r.TakeU32(&version)) return reject(Corrupt("truncated version"));
  if (version != kVersion) {
    return reject(Status(StatusCode::kFailedPrecondition,
                         "unsupported BBJB version " +
                             std::to_string(version) + " at bytes 4-7 "
                             "(want " + std::to_string(kVersion) + ")"));
  }

  JobRecord job;
  std::uint32_t state = 0, window = 0, shards = 0, threads = 0;
  std::uint32_t max_attempts = 0, backoff = 0, deadline = 0;
  if (!r.TakeU64(&job.id) || !r.TakeU32(&state) ||
      !r.TakeF64(&job.spec.phi) || !r.TakeU32(&window) ||
      !r.TakeU32(&shards) || !r.TakeU32(&threads) ||
      !r.TakeU32(&max_attempts) || !r.TakeU32(&backoff) ||
      !r.TakeU32(&deadline)) {
    return reject(Corrupt("truncated fixed header (want 52 bytes)"));
  }
  if (state > static_cast<std::uint32_t>(JobState::kFailed)) {
    return reject(Corrupt("implausible state " + std::to_string(state) +
                          " at bytes 16-19 (want 0-3)"));
  }
  job.state = static_cast<JobState>(state);
  job.spec.window = static_cast<int>(window);
  job.spec.shards = static_cast<int>(shards);
  job.spec.threads = static_cast<int>(threads);
  job.spec.max_attempts = static_cast<int>(max_attempts);
  job.spec.backoff_ms = static_cast<int>(backoff);
  job.spec.deadline_ms = static_cast<int>(deadline);

  Status error;
  if (!TakeString(&r, &job.spec.input, &error, "input") ||
      !TakeString(&r, &job.spec.output, &error, "output") ||
      !TakeString(&r, &job.spec.vb, &error, "vb") ||
      !TakeString(&r, &job.spec.max_bad_frames, &error, "max-bad-frames") ||
      !TakeString(&r, &job.final_reason, &error, "final-reason")) {
    return reject(error);
  }

  const std::size_t attempts_at = r.pos;
  std::uint32_t attempt_count = 0;
  if (!r.TakeU32(&attempt_count)) {
    return reject(Corrupt("truncated attempt count at byte " +
                          std::to_string(attempts_at)));
  }
  if (attempt_count > kMaxAttemptRecords) {
    return reject(Corrupt("implausible attempt count " +
                          std::to_string(attempt_count) + " at bytes " +
                          std::to_string(attempts_at) + "-" +
                          std::to_string(attempts_at + 3)));
  }
  job.attempts.reserve(attempt_count);
  for (std::uint32_t i = 0; i < attempt_count; ++i) {
    JobAttempt a;
    std::uint32_t delay = 0, exit_code = 0;
    if (!r.TakeU32(&delay) || !r.TakeU32(&exit_code)) {
      return reject(Corrupt("truncated attempt " + std::to_string(i) +
                            " at byte " + std::to_string(r.pos)));
    }
    a.delay_ms = static_cast<int>(delay);
    a.exit_code = static_cast<std::int32_t>(exit_code);
    if (!TakeString(&r, &a.reason, &error, "attempt reason")) {
      return reject(error);
    }
    job.attempts.push_back(std::move(a));
  }
  if (r.pos != body.size()) {
    return reject(Corrupt(std::to_string(body.size() - r.pos) +
                          " trailing byte(s) after the attempt list at "
                          "byte " + std::to_string(r.pos)));
  }
  if (const Status plausible = ValidateSpec(job.spec); !plausible.ok()) {
    return reject(plausible);
  }
  return job;
}

}  // namespace bb::service
