// Crash-safe batch job records for attackd (DESIGN.md section 16).
//
// A BBJB job record is the unit the attackd spool trades in: everything a
// supervisor needs to run one reconstruction job as N shard worker
// subprocesses - the input stream, the attack configuration threaded down
// to `backbuster attack --stream --shard i/N`, the retry policy - plus the
// job's full lifecycle so far: state, every completed attempt (the backoff
// delay it waited, how it exited, why), and the terminal reason once the
// job is done with. The record travels between spool directories
// (incoming/ -> queued/ -> running/ -> done/ | failed/) and is rewritten
// sealed at every transition, so a kill -9 at any instant loses at most
// one in-flight transition, never the job.
//
// File format "BBJB" version 1 (integers little-endian; doubles as
// IEEE-754 bit patterns; strings as u32 length + raw bytes):
//
//   magic         "BBJB"                          bytes 0-3
//   version       u32 = 1                         bytes 4-7
//   id            u64   spool-unique job id       bytes 8-15
//   state         u32   JobState                  bytes 16-19
//   phi           f64   blending-blur radius      bytes 20-27
//   window        u32   streaming window frames   bytes 28-31
//   shards        u32   worker subprocess count   bytes 32-35
//   threads       u32   per-worker --threads      bytes 36-39
//                       (0 = worker default)
//   max_attempts  u32   retry budget, >= 1        bytes 40-43
//   backoff_ms    u32   base retry delay          bytes 44-47
//   deadline_ms   u32   per-attempt watchdog      bytes 48-51
//                       (0 = no deadline)
//   input         string   .bbv path
//   output        string   output image base
//   vb            string   stock VB name; "" = derive from footage
//   max_bad       string   error budget in CLI spelling ("5", "10%", "")
//   final_reason  string   terminal structured reason; "" while live
//   attempts      u32 count, then per attempt:
//                   delay_ms  u32   backoff waited before the attempt
//                   exit_code u32   two's-complement i32; see JobAttempt
//                   reason    string
//   checksum      u64   FNV-1a 64 over every preceding byte
//
// Loads treat the file as hostile input: the checksum is verified before
// any field is trusted, then every field is plausibility-checked with the
// offending byte range named - the same discipline as BBCK/BBPR. The
// "spool" fault-injection point fires on loads (occurrence-keyed) so the
// daemon's handling of unreadable records is chaos-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bb::service {

enum class JobState : std::uint32_t {
  kQueued = 0,   // admitted, waiting for a supervisor slot
  kRunning = 1,  // a supervisor owns it; work/<id>/ holds its scratch
  kDone = 2,     // merged output sealed at spec.output
  kFailed = 3,   // refused at admission or retries exhausted; see
                 // final_reason
};

const char* ToString(JobState state);

// What the client submits (attackctl submit flags, one field each).
struct JobSpec {
  std::string input;         // .bbv stream to attack
  std::string output;        // output image base for the merged result
  std::string vb;            // stock VB name; empty = derive from footage
  double phi = 0.0;          // 0 = worker default
  int window = 64;           // streaming window frames
  int shards = 1;            // worker subprocess fan-out
  int threads = 0;           // per-worker --threads; 0 = worker default
  std::string max_bad_frames;  // per-job error budget, CLI spelling; "" =
                               // unlimited, threaded to --max-bad-frames
  int max_attempts = 3;      // total attempt budget, >= 1
  int backoff_ms = 250;      // attempt k (k >= 1) waits backoff_ms << (k-1)
  int deadline_ms = 0;       // watchdog per attempt; 0 = none
};

// One completed (or interrupted) attempt, oldest first. exit_code holds
// the shard worker / reducer outcome that ended the attempt: the exit
// status for normal exits, -SIGNUM when a worker died by signal (the
// watchdog kills with SIGKILL, so a timeout records -9).
struct JobAttempt {
  int delay_ms = 0;
  int exit_code = 0;
  std::string reason;  // empty on success
};

struct JobRecord {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobSpec spec;
  std::vector<JobAttempt> attempts;
  std::string final_reason;  // set when state is kFailed (or refused)
};

// The deterministic retry schedule: attempt 0 starts immediately, attempt
// k >= 1 waits spec.backoff_ms << (k-1), capped at 60 s. Recorded in the
// attempt history, so a job record replays its own schedule.
int BackoffDelayMs(const JobSpec& spec, int attempt);

// Field-level plausibility used both at admission and on load: bounded
// string lengths, shards in [1, 256], window >= 1, max_attempts in
// [1, 100], non-empty input/output. Returns kInvalidArgument naming the
// first offending field.
Status ValidateSpec(const JobSpec& spec);

// Serializes `job` to `path` via write-temp-then-rename
// (common::AtomicWriteFile, "write" fault point).
Status SaveJob(const JobRecord& job, const std::string& path);

// Parses and validates `path` as hostile input. kNotFound when the file
// does not exist; kDataLoss / kFailedPrecondition / kInvalidArgument on
// corrupt, version-mismatched, or implausible contents, naming the
// offending byte range. The "spool" fault point fires here.
Result<JobRecord> LoadJob(const std::string& path);

}  // namespace bb::service
