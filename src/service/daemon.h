// attackd's supervisor loop (DESIGN.md section 16).
//
// The daemon owns one spool (spool.h) and drives jobs through it:
//
//   admit    incoming/ records are loaded as hostile input and either
//            admitted to queued/ or refused to failed/ with a structured
//            final_reason (unreadable record, missing input, or
//            RESOURCE_EXHAUSTED when queued+running is at queue_depth)
//   run      the lowest-id queued job moves to running/ and executes as
//            spec.shards `backbuster attack --stream --shard i/N` worker
//            subprocesses (at most max_workers concurrent), each writing
//            its own checkpoint and partial under work/<id>/; completed
//            partials are skipped on retry, so attempts resume instead of
//            restarting. A final `backbuster reduce` merges the partials
//            into output bit-identical to a single-process attack.
//   watch    when spec.deadline_ms > 0, an attempt that outlives it has
//            its workers SIGKILLed and the attempt recorded as exit -9.
//   retry    failed attempts are retried on the deterministic schedule of
//            BackoffDelayMs until the budget of spec.max_attempts
//            attempts is spent; then the job is quarantined to failed/
//            with a RETRY_EXHAUSTED final_reason. A worker exiting 2
//            (usage error) fails the job permanently without retries, and
//            exit 3 (interrupted with checkpoint sealed) never consumes
//            attempt budget.
//   drain    when *opts.drain becomes true (the SIGTERM handler's flag),
//            live workers get SIGTERM, seal their checkpoints, and exit
//            3; the job returns to queued/ and Run() returns. A restarted
//            daemon resumes it from the sealed work/<id>/ scratch.
//
// One daemon per spool, enforced with an advisory flock on
// <root>/daemon.lock. Chaos hooks: the "spawn" fault point fails worker
// launches, "spool" corrupts record loads, "write" breaks record seals.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "service/job.h"

namespace bb::service {

struct DaemonOptions {
  std::string spool_root;
  std::string worker_bin;  // the backbuster binary workers exec
  int max_workers = 3;     // concurrent shard subprocesses per job
  int queue_depth = 8;     // admission bound over queued/ + running/
  int poll_ms = 50;        // supervisor poll interval
  bool drain_once = false;  // exit once the spool has no runnable jobs
  // SIGTERM/SIGINT graceful-drain flag; may be null (never drains).
  const std::atomic<bool>* drain = nullptr;
};

struct DaemonStats {
  int jobs_admitted = 0;
  int jobs_refused = 0;
  int jobs_done = 0;
  int jobs_failed = 0;
  int jobs_requeued = 0;   // cold-start recovery of orphaned running/ jobs
  int retries = 0;         // attempts after the first, per job, summed
  int worker_timeouts = 0;  // watchdog SIGKILLs
  int workers_spawned = 0;  // shard + reduce subprocesses launched
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts) : opts_(std::move(opts)) {}

  // Recovers the spool, then loops admit/run until drained (drain_once)
  // or the drain flag fires. Returns kFailedPrecondition without touching
  // the spool when another daemon holds the lock.
  Status Run();

  const DaemonStats& stats() const { return stats_; }

 private:
  enum class JobOutcome { kDone, kFailed, kDrained };

  Status Admit();
  Result<JobOutcome> RunJob(JobRecord* job);

  DaemonOptions opts_;
  DaemonStats stats_;
};

}  // namespace bb::service
