// On-disk job spool for attackd (DESIGN.md section 16).
//
// The spool is a directory tree whose subdirectory IS the job state —
// there is no separate index to drift out of sync:
//
//   <root>/incoming/   client drop-box; records the daemon has not seen
//   <root>/queued/     admitted, waiting for a supervisor slot
//   <root>/running/    owned by the live supervisor
//   <root>/done/       merged output sealed; terminal
//   <root>/failed/     refused or retry-exhausted; terminal, with a
//                      structured final_reason in the record
//   <root>/work/<id>/  per-job scratch: shard checkpoints (.bbck),
//                      partials (.bbpr), worker logs
//
// Every record is a sealed BBJB file named <id>.bbjb. A state transition
// is "write the record into the destination directory (atomically, via
// temp-then-rename), then unlink the source" — so a crash between the two
// steps leaves the job visible in BOTH directories, never in neither.
// RecoverSpool resolves such duplicates by terminal-state precedence
// (done > failed > running > queued > incoming) and requeues running/
// records, whose supervisor died with them, back to queued/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/job.h"

namespace bb::service {

inline constexpr const char* kIncomingDir = "incoming";
inline constexpr const char* kQueuedDir = "queued";
inline constexpr const char* kRunningDir = "running";
inline constexpr const char* kDoneDir = "done";
inline constexpr const char* kFailedDir = "failed";
inline constexpr const char* kWorkDir = "work";

// Creates the spool root and every state directory (mkdir -p semantics).
Status EnsureSpool(const std::string& root);

// <root>/<dir>/<id>.bbjb
std::string JobPath(const std::string& root, const char* dir,
                    std::uint64_t id);

// Job ids present in <root>/<dir>, ascending. Non-.bbjb names and
// non-numeric stems are ignored (the directory may hold .tmp files from
// an interrupted atomic write).
Result<std::vector<std::uint64_t>> ListJobs(const std::string& root,
                                            const char* dir);

// One spool transition: seal `job` into <root>/<to>/<id>.bbjb, then
// unlink <root>/<from>/<id>.bbjb. Write-then-remove, so a crash in
// between duplicates the record instead of losing it.
Status MoveJob(const JobRecord& job, const std::string& root,
               const char* from, const char* to);

// What cold-start recovery found and fixed.
struct RecoveryReport {
  int duplicates_dropped = 0;  // lower-precedence copies unlinked
  int requeued = 0;            // running/ -> queued/ (supervisor died)
};

// Scans every state directory, resolves crash-window duplicates by
// precedence (done > failed > running > queued > incoming), and requeues
// orphaned running/ jobs. Idempotent; called once before the daemon
// starts admitting.
Result<RecoveryReport> RecoverSpool(const std::string& root);

// max(id over every state directory) + 1; 1 for an empty spool.
Result<std::uint64_t> NextJobId(const std::string& root);

}  // namespace bb::service
