#include "imaging/image.h"

namespace bb::imaging {

std::size_t CountSet(const Bitmap& mask) {
  std::size_t n = 0;
  for (std::uint8_t v : mask.pixels()) n += (v != 0);
  return n;
}

double SetFraction(const Bitmap& mask) {
  if (mask.pixel_count() == 0) return 0.0;
  return static_cast<double>(CountSet(mask)) /
         static_cast<double>(mask.pixel_count());
}

Bitmap And(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "And");
  Bitmap out(a.width(), a.height());
  auto pa = a.pixels(), pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < po.size(); ++i) {
    po[i] = (pa[i] && pb[i]) ? kMaskSet : kMaskClear;
  }
  return out;
}

Bitmap Or(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "Or");
  Bitmap out(a.width(), a.height());
  auto pa = a.pixels(), pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < po.size(); ++i) {
    po[i] = (pa[i] || pb[i]) ? kMaskSet : kMaskClear;
  }
  return out;
}

Bitmap AndNot(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "AndNot");
  Bitmap out(a.width(), a.height());
  auto pa = a.pixels(), pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < po.size(); ++i) {
    po[i] = (pa[i] && !pb[i]) ? kMaskSet : kMaskClear;
  }
  return out;
}

Bitmap Not(const Bitmap& a) {
  Bitmap out(a.width(), a.height());
  auto pa = a.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < po.size(); ++i) {
    po[i] = pa[i] ? kMaskClear : kMaskSet;
  }
  return out;
}

double Iou(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "Iou");
  std::size_t inter = 0, uni = 0;
  auto pa = a.pixels(), pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const bool sa = pa[i] != 0, sb = pb[i] != 0;
    inter += (sa && sb);
    uni += (sa || sb);
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace bb::imaging
