#include "imaging/image.h"

#include "imaging/kernels/kernels.h"

namespace bb::imaging {

std::size_t CountSet(const Bitmap& mask) {
  return kernels::CountSet(mask.pixels());
}

double SetFraction(const Bitmap& mask) {
  if (mask.pixel_count() == 0) return 0.0;
  return static_cast<double>(CountSet(mask)) /
         static_cast<double>(mask.pixel_count());
}

Bitmap And(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "And");
  Bitmap out(a.width(), a.height());
  kernels::MaskAnd(a.pixels(), b.pixels(), out.pixels());
  return out;
}

Bitmap Or(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "Or");
  Bitmap out(a.width(), a.height());
  kernels::MaskOr(a.pixels(), b.pixels(), out.pixels());
  return out;
}

Bitmap AndNot(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "AndNot");
  Bitmap out(a.width(), a.height());
  kernels::MaskAndNot(a.pixels(), b.pixels(), out.pixels());
  return out;
}

Bitmap Not(const Bitmap& a) {
  Bitmap out(a.width(), a.height());
  kernels::MaskNot(a.pixels(), out.pixels());
  return out;
}

double Iou(const Bitmap& a, const Bitmap& b) {
  RequireSameShape(a, b, "Iou");
  std::uint64_t inter = 0, uni = 0;
  kernels::CountAndOr(a.pixels(), b.pixels(), &inter, &uni);
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace bb::imaging
