#include "imaging/io.h"

#include <cstdio>
#include <fstream>
#include <vector>

#ifdef BB_HAVE_PNG
#include <png.h>
#endif

namespace bb::imaging {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

const char* CheckImageDims(long long w, long long h) {
  if (w <= 0 || h <= 0) return "non-positive dimensions";
  if (w > kMaxImageDimension || h > kMaxImageDimension) {
    return "dimension exceeds kMaxImageDimension";
  }
  // Both factors are capped above, so the product cannot overflow.
  if (w * h > kMaxImagePixels) return "pixel count exceeds kMaxImagePixels";
  return nullptr;
}

bool WritePpm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  // bblint: allow(no-per-pixel-loop) -- PPM codec; byte order is the file format's, not a kernel shape
  for (const Rgb8& p : img.pixels()) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  return static_cast<bool>(out);
}

std::optional<Image> ReadPpm(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "ppm: cannot open file");
    return std::nullopt;
  }
  std::string magic;
  in >> magic;
  if (magic != "P6") {
    SetError(error, "ppm: bad magic (want P6)");
    return std::nullopt;
  }

  auto next_token = [&in]() -> std::optional<long> {
    // Skips whitespace and '#' comments per the PPM spec.
    while (in) {
      int c = in.peek();
      if (c == '#') {
        std::string line;
        std::getline(in, line);
      } else if (std::isspace(c)) {
        in.get();
      } else {
        break;
      }
    }
    long v = 0;
    if (!(in >> v)) return std::nullopt;
    return v;
  };

  const auto w = next_token();
  const auto h = next_token();
  const auto maxval = next_token();
  if (!w || !h || !maxval || *maxval != 255) {
    SetError(error, "ppm: malformed header");
    return std::nullopt;
  }
  if (const char* why = CheckImageDims(*w, *h)) {
    SetError(error, std::string("ppm: ") + why);
    return std::nullopt;
  }
  in.get();  // single whitespace after header

  // Dimensions validated against kMaxImageDimension above, so the narrowing
  // is exact.
  Image img(static_cast<int>(*w), static_cast<int>(*h));
  std::vector<char> buf(img.pixel_count() * 3);
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (static_cast<std::size_t>(in.gcount()) != buf.size()) {
    SetError(error, "ppm: truncated pixel data");
    return std::nullopt;
  }
  auto px = img.pixels();
  // bblint: allow(no-per-pixel-loop) -- PPM codec; byte order is the file format's, not a kernel shape
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = {static_cast<std::uint8_t>(buf[3 * i]),
             static_cast<std::uint8_t>(buf[3 * i + 1]),
             static_cast<std::uint8_t>(buf[3 * i + 2])};
  }
  return img;
}

bool PngSupported() {
#ifdef BB_HAVE_PNG
  return true;
#else
  return false;
#endif
}

bool WritePng(const Image& img, const std::string& path) {
#ifdef BB_HAVE_PNG
  FILE* fp = std::fopen(path.c_str(), "wb");
  if (!fp) return false;
  png_structp png =
      png_create_write_struct(PNG_LIBPNG_VER_STRING, nullptr, nullptr, nullptr);
  if (!png) {
    std::fclose(fp);
    return false;
  }
  png_infop info = png_create_info_struct(png);
  if (!info) {
    png_destroy_write_struct(&png, nullptr);
    std::fclose(fp);
    return false;
  }
  if (setjmp(png_jmpbuf(png))) {
    png_destroy_write_struct(&png, &info);
    std::fclose(fp);
    return false;
  }
  png_init_io(png, fp);
  png_set_IHDR(png, info, static_cast<png_uint_32>(img.width()),
               static_cast<png_uint_32>(img.height()), 8, PNG_COLOR_TYPE_RGB,
               PNG_INTERLACE_NONE, PNG_COMPRESSION_TYPE_DEFAULT,
               PNG_FILTER_TYPE_DEFAULT);
  png_write_info(png, info);
  std::vector<png_byte> row(static_cast<std::size_t>(img.width()) * 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Rgb8 p = img(x, y);
      row[3 * static_cast<std::size_t>(x)] = p.r;
      row[3 * static_cast<std::size_t>(x) + 1] = p.g;
      row[3 * static_cast<std::size_t>(x) + 2] = p.b;
    }
    png_write_row(png, row.data());
  }
  png_write_end(png, nullptr);
  png_destroy_write_struct(&png, &info);
  std::fclose(fp);
  return true;
#else
  (void)img;
  (void)path;
  return false;
#endif
}

std::optional<Image> ReadPng(const std::string& path, std::string* error) {
#ifdef BB_HAVE_PNG
  FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) {
    SetError(error, "png: cannot open file");
    return std::nullopt;
  }
  png_byte header[8];
  if (std::fread(header, 1, 8, fp) != 8 || png_sig_cmp(header, 0, 8) != 0) {
    std::fclose(fp);
    SetError(error, "png: bad signature");
    return std::nullopt;
  }
  png_structp png =
      png_create_read_struct(PNG_LIBPNG_VER_STRING, nullptr, nullptr, nullptr);
  if (!png) {
    std::fclose(fp);
    return std::nullopt;
  }
  png_infop info = png_create_info_struct(png);
  if (!info) {
    png_destroy_read_struct(&png, nullptr, nullptr);
    std::fclose(fp);
    return std::nullopt;
  }
  // Declared before setjmp so cleanup on longjmp sees a defined state.
  std::optional<Image> result;
  std::vector<png_bytep> row_ptrs;
  std::vector<png_byte> pixels;
  if (setjmp(png_jmpbuf(png))) {
    png_destroy_read_struct(&png, &info, nullptr);
    std::fclose(fp);
    SetError(error, "png: decode error");
    return std::nullopt;
  }
  png_init_io(png, fp);
  png_set_sig_bytes(png, 8);
  png_read_info(png, info);

  // Normalize everything to 8-bit RGB.
  png_set_palette_to_rgb(png);
  png_set_expand_gray_1_2_4_to_8(png);
  png_set_gray_to_rgb(png);
  png_set_strip_16(png);
  png_set_strip_alpha(png);
  png_read_update_info(png, info);

  const png_uint_32 w = png_get_image_width(png, info);
  const png_uint_32 h = png_get_image_height(png, info);
  const char* dims_why = CheckImageDims(w, h);
  if (dims_why != nullptr || png_get_channels(png, info) != 3) {
    png_destroy_read_struct(&png, &info, nullptr);
    std::fclose(fp);
    SetError(error, dims_why != nullptr ? std::string("png: ") + dims_why
                                        : "png: unexpected channel count");
    return std::nullopt;
  }
  pixels.resize(static_cast<std::size_t>(w) * h * 3);
  row_ptrs.resize(h);
  for (png_uint_32 y = 0; y < h; ++y) {
    // libpng wants raw row pointers into the interleaved byte buffer; this
    // is codec interop, not image math. bblint: allow(no-raw-pixel-indexing)
    row_ptrs[y] = pixels.data() + static_cast<std::size_t>(y) * w * 3;
  }
  png_read_image(png, row_ptrs.data());
  png_destroy_read_struct(&png, &info, nullptr);
  std::fclose(fp);

  // Dimensions validated against kMaxImageDimension above, so the narrowing
  // is exact.
  Image img(static_cast<int>(w), static_cast<int>(h));
  auto px = img.pixels();
  // bblint: allow(no-per-pixel-loop) -- BMP codec; byte order is the file format's, not a kernel shape
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = {pixels[3 * i], pixels[3 * i + 1], pixels[3 * i + 2]};
  }
  result = std::move(img);
  return result;
#else
  (void)path;
  SetError(error, "png: support not compiled in");
  return std::nullopt;
#endif
}

std::optional<Image> ReadImageAuto(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".png") == 0) {
    return ReadPng(path);
  }
  return ReadPpm(path);
}

namespace {

// Wraps one of the error-out-param readers as a Result, classifying the
// error text: "cannot open" means the file is absent (kNotFound);
// everything else means the bytes were there but unusable (kDataLoss).
Result<Image> LoadWith(
    std::optional<Image> (*reader)(const std::string&, std::string*),
    const std::string& path) {
  std::string error;
  if (auto img = reader(path, &error)) return std::move(*img);
  const StatusCode code = error.find("cannot open") != std::string::npos
                              ? StatusCode::kNotFound
                              : StatusCode::kDataLoss;
  return Status(code, error.empty() ? "read failed" : error)
      .WithContext("load " + path);
}

}  // namespace

Result<Image> LoadPpm(const std::string& path) {
  return LoadWith(&ReadPpm, path);
}

Result<Image> LoadPng(const std::string& path) {
  return LoadWith(&ReadPng, path);
}

Result<Image> LoadImageAuto(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".png") == 0) {
    return LoadPng(path);
  }
  return LoadPpm(path);
}

std::optional<std::string> WriteImageAuto(const Image& img,
                                          const std::string& path_base) {
  if (PngSupported()) {
    const std::string path = path_base + ".png";
    if (WritePng(img, path)) return path;
    return std::nullopt;
  }
  const std::string path = path_base + ".ppm";
  if (WritePpm(img, path)) return path;
  return std::nullopt;
}

Image MaskToImage(const Bitmap& mask) {
  Image out(mask.width(), mask.height());
  auto pm = mask.pixels();
  auto po = out.pixels();
  // bblint: allow(no-per-pixel-loop) -- debug overlay render; cold path, mixes mask and checker pattern
  for (std::size_t i = 0; i < po.size(); ++i) {
    const std::uint8_t v = pm[i] ? 255 : 0;
    po[i] = {v, v, v};
  }
  return out;
}

}  // namespace bb::imaging
