// Gaussian / Laplacian image pyramids (Burt & Adelson 1983).
//
// The paper lists "Laplacian pyramid blending" among the blending functions
// a video-calling app may use for its virtual background (sec. III). The
// vbg compositor's kLaplacianPyramid blend mode is built on these
// primitives: blend each Laplacian band with a progressively smoothed mask,
// then collapse.
#pragma once

#include <vector>

#include "imaging/image.h"

namespace bb::imaging {

// Signed-float RGB plane used for Laplacian bands (differences can be
// negative).
struct Rgbf {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
};
using BandImage = ImageT<Rgbf>;

BandImage ToBandImage(const Image& img);
// Clamps each channel to [0, 255].
Image FromBandImage(const BandImage& img);

// Halves each dimension (rounding up) after a small smoothing kernel; the
// inverse upsamples with bilinear interpolation back to an arbitrary
// (w, h) so odd sizes round-trip.
BandImage Downsample2x(const BandImage& img);
BandImage UpsampleTo(const BandImage& img, int width, int height);

// Gaussian pyramid: levels[0] is the input, each next level is
// Downsample2x of the previous. `levels` includes the base (so levels >= 1);
// construction stops early once a dimension reaches 1.
std::vector<BandImage> GaussianPyramid(const BandImage& img, int levels);

// Laplacian pyramid: band[i] = gauss[i] - Upsample(gauss[i+1]); the last
// entry is the residual low-pass level. Collapse inverts it exactly (up to
// float rounding).
std::vector<BandImage> LaplacianPyramid(const BandImage& img, int levels);
BandImage CollapseLaplacian(const std::vector<BandImage>& pyramid);

// Laplacian-pyramid blend of two images with a soft mask in [0, 1]
// (1 = take `a`). Classic Burt-Adelson multiband blending.
Image PyramidBlend(const Image& a, const Image& b, const FloatImage& mask,
                   int levels = 4);

}  // namespace bb::imaging
