#include "imaging/draw.h"

#include <algorithm>
#include <cmath>

#include "imaging/kernels/kernels.h"

namespace bb::imaging {

namespace {

// Generic scanline fill for a predicate-defined region over a bounding box.
template <typename ImgT, typename Pred>
void FillWhere(ImgT& img, const Rect& bbox, typename ImgT::Pixel value,
               Pred&& inside) {
  const Rect clipped =
      bbox.Intersect({0, 0, img.width(), img.height()});
  for (int y = clipped.y; y < clipped.y2(); ++y) {
    for (int x = clipped.x; x < clipped.x2(); ++x) {
      if (inside(x, y)) img(x, y) = value;
    }
  }
}

template <typename ImgT>
void FillRectImpl(ImgT& img, const Rect& r, typename ImgT::Pixel value) {
  const Rect clipped = r.Intersect({0, 0, img.width(), img.height()});
  for (int y = clipped.y; y < clipped.y2(); ++y) {
    auto row = img.row(y);
    std::fill(row.begin() + clipped.x, row.begin() + clipped.x2(), value);
  }
}

template <typename ImgT>
void FillEllipseImpl(ImgT& img, int cx, int cy, int rx, int ry,
                     typename ImgT::Pixel value) {
  if (rx <= 0 || ry <= 0) return;
  const double inv_rx2 = 1.0 / (static_cast<double>(rx) * rx);
  const double inv_ry2 = 1.0 / (static_cast<double>(ry) * ry);
  FillWhere(img, Rect{cx - rx, cy - ry, 2 * rx + 1, 2 * ry + 1}, value,
            [&](int x, int y) {
              const double dx = x - cx, dy = y - cy;
              return dx * dx * inv_rx2 + dy * dy * inv_ry2 <= 1.0;
            });
}

template <typename ImgT>
void FillCapsuleImpl(ImgT& img, PointF a, PointF b, double radius,
                     typename ImgT::Pixel value) {
  if (radius <= 0) return;
  const double len2 = (b.x - a.x) * (b.x - a.x) + (b.y - a.y) * (b.y - a.y);
  const int x0 = static_cast<int>(std::floor(std::min(a.x, b.x) - radius));
  const int y0 = static_cast<int>(std::floor(std::min(a.y, b.y) - radius));
  const int x1 = static_cast<int>(std::ceil(std::max(a.x, b.x) + radius));
  const int y1 = static_cast<int>(std::ceil(std::max(a.y, b.y) + radius));
  const double r2 = radius * radius;
  FillWhere(img, Rect{x0, y0, x1 - x0 + 1, y1 - y0 + 1}, value,
            [&](int x, int y) {
              // Distance from (x, y) to segment a-b.
              double t = 0.0;
              if (len2 > 0.0) {
                t = ((x - a.x) * (b.x - a.x) + (y - a.y) * (b.y - a.y)) / len2;
                t = std::clamp(t, 0.0, 1.0);
              }
              const double px = a.x + t * (b.x - a.x);
              const double py = a.y + t * (b.y - a.y);
              const double dx = x - px, dy = y - py;
              return dx * dx + dy * dy <= r2;
            });
}

}  // namespace

void FillRect(Image& img, const Rect& r, Rgb8 color) {
  FillRectImpl(img, r, color);
}
void FillRect(Bitmap& mask, const Rect& r, std::uint8_t value) {
  FillRectImpl(mask, r, value);
}

void DrawRectOutline(Image& img, const Rect& r, Rgb8 color, int thickness) {
  if (r.Empty() || thickness <= 0) return;
  FillRect(img, {r.x, r.y, r.w, thickness}, color);
  FillRect(img, {r.x, r.y2() - thickness, r.w, thickness}, color);
  FillRect(img, {r.x, r.y, thickness, r.h}, color);
  FillRect(img, {r.x2() - thickness, r.y, thickness, r.h}, color);
}

void FillCircle(Image& img, int cx, int cy, int radius, Rgb8 color) {
  FillEllipseImpl(img, cx, cy, radius, radius, color);
}
void FillCircle(Bitmap& mask, int cx, int cy, int radius, std::uint8_t value) {
  FillEllipseImpl(mask, cx, cy, radius, radius, value);
}

void FillEllipse(Image& img, int cx, int cy, int rx, int ry, Rgb8 color) {
  FillEllipseImpl(img, cx, cy, rx, ry, color);
}
void FillEllipse(Bitmap& mask, int cx, int cy, int rx, int ry,
                 std::uint8_t value) {
  FillEllipseImpl(mask, cx, cy, rx, ry, value);
}

void FillCapsule(Image& img, PointF a, PointF b, double radius, Rgb8 color) {
  FillCapsuleImpl(img, a, b, radius, color);
}
void FillCapsule(Bitmap& mask, PointF a, PointF b, double radius,
                 std::uint8_t value) {
  FillCapsuleImpl(mask, a, b, radius, value);
}

void DrawLine(Image& img, Point a, Point b, Rgb8 color, int thickness) {
  const double radius = std::max(0.5, thickness * 0.5);
  FillCapsule(img, PointF{static_cast<double>(a.x), static_cast<double>(a.y)},
              PointF{static_cast<double>(b.x), static_cast<double>(b.y)},
              radius, color);
}

void FillRing(Image& img, int cx, int cy, int r_outer, int r_inner,
              Rgb8 color) {
  if (r_outer <= 0 || r_inner >= r_outer) return;
  const long long ro2 = static_cast<long long>(r_outer) * r_outer;
  const long long ri2 = static_cast<long long>(r_inner) * r_inner;
  FillWhere(img, Rect{cx - r_outer, cy - r_outer, 2 * r_outer + 1,
                      2 * r_outer + 1},
            color, [&](int x, int y) {
              const long long dx = x - cx, dy = y - cy;
              const long long d2 = dx * dx + dy * dy;
              return d2 <= ro2 && d2 >= ri2;
            });
}

void CopyMasked(Image& dst, const Image& src, const Bitmap& where) {
  RequireSameShape(dst, src, "CopyMasked");
  RequireSameShape(dst, where, "CopyMasked");
  // In-place select: out aliases the "else" input, which both kernel
  // implementations handle element-wise.
  kernels::SelectRgb(where.pixels(), src.pixels(), dst.pixels(),
                     dst.pixels());
}

void PaintMasked(Image& dst, const Bitmap& where, Rgb8 color) {
  RequireSameShape(dst, where, "PaintMasked");
  auto pd = dst.pixels();
  auto pw = where.pixels();
  // Masked constant fill: no span input to select from, and the one call
  // site is cold (scene synthesis), so it stays out of the kernel catalog.
  // bblint: allow(no-per-pixel-loop) -- masked constant fill, cold path
  for (std::size_t i = 0; i < pd.size(); ++i) {
    if (pw[i]) pd[i] = color;
  }
}

}  // namespace bb::imaging
