#include "imaging/filter.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "imaging/kernels/kernels.h"

namespace bb::imaging {

namespace {

std::uint8_t ToU8(float v) { return ClampChannelU8(v); }

// Horizontal-then-vertical sliding-window mean on one float channel. Both
// passes are parallel over independent rows/columns; every lane writes a
// disjoint slice, so the result is identical at any thread count.
FloatImage BoxBlurChannel(const FloatImage& src, int radius) {
  const int w = src.width();
  const int h = src.height();
  FloatImage tmp(w, h), out(w, h);
  const float inv = 1.0f / (2 * radius + 1);
  // Horizontal pass with edge clamping.
  common::ParallelFor(0, h, /*grain=*/16, [&](std::int64_t yy) {
    const int y = static_cast<int>(yy);
    float acc = 0.0f;
    for (int k = -radius; k <= radius; ++k) {
      acc += src(std::clamp(k, 0, w - 1), y);
    }
    for (int x = 0; x < w; ++x) {
      tmp(x, y) = acc * inv;
      acc += src(std::clamp(x + radius + 1, 0, w - 1), y);
      acc -= src(std::clamp(x - radius, 0, w - 1), y);
    }
  });
  // Vertical pass.
  common::ParallelFor(0, w, /*grain=*/16, [&](std::int64_t xx) {
    const int x = static_cast<int>(xx);
    float acc = 0.0f;
    for (int k = -radius; k <= radius; ++k) {
      acc += tmp(x, std::clamp(k, 0, h - 1));
    }
    for (int y = 0; y < h; ++y) {
      out(x, y) = acc * inv;
      acc += tmp(x, std::clamp(y + radius + 1, 0, h - 1));
      acc -= tmp(x, std::clamp(y - radius, 0, h - 1));
    }
  });
  return out;
}

std::array<FloatImage, 3> SplitChannels(const Image& img) {
  std::array<FloatImage, 3> ch = {FloatImage(img.width(), img.height()),
                                  FloatImage(img.width(), img.height()),
                                  FloatImage(img.width(), img.height())};
  kernels::SplitRgb(img.pixels(), ch[0].pixels(), ch[1].pixels(),
                    ch[2].pixels());
  return ch;
}

Image MergeChannels(const std::array<FloatImage, 3>& ch) {
  Image out(ch[0].width(), ch[0].height());
  kernels::MergeRgb(ch[0].pixels(), ch[1].pixels(), ch[2].pixels(),
                    out.pixels());
  return out;
}

FloatImage Convolve1D(const FloatImage& src, const std::vector<float>& kernel,
                      bool horizontal) {
  const int w = src.width();
  const int h = src.height();
  const int radius = static_cast<int>(kernel.size() / 2);
  FloatImage out(w, h);
  common::ParallelFor(0, h, /*grain=*/8, [&](std::int64_t yy) {
    const int y = static_cast<int>(yy);
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        const int sx = horizontal ? std::clamp(x + k, 0, w - 1) : x;
        const int sy = horizontal ? y : std::clamp(y + k, 0, h - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] * src(sx, sy);
      }
      out(x, y) = acc;
    }
  });
  return out;
}

}  // namespace

Image BoxBlur(const Image& img, int radius) {
  if (radius <= 0 || img.empty()) return img;
  auto ch = SplitChannels(img);
  for (auto& c : ch) c = BoxBlurChannel(c, radius);
  return MergeChannels(ch);
}

FloatImage BoxBlur(const FloatImage& img, int radius) {
  if (radius <= 0 || img.empty()) return img;
  return BoxBlurChannel(img, radius);
}

Image GaussianBlur(const Image& img, double sigma) {
  if (sigma <= 0.0 || img.empty()) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(2 * radius + 1);
  float sum = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = std::exp(-0.5f * static_cast<float>(k * k) /
                             static_cast<float>(sigma * sigma));
    kernel[k + radius] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;

  auto ch = SplitChannels(img);
  for (auto& c : ch) {
    c = Convolve1D(c, kernel, /*horizontal=*/true);
    c = Convolve1D(c, kernel, /*horizontal=*/false);
  }
  return MergeChannels(ch);
}

Image MotionBlur(const Image& img, double dx, double dy, int length) {
  if (length <= 1 || img.empty()) return img;
  const double norm = std::hypot(dx, dy);
  if (norm <= 0.0) return img;
  dx /= norm;
  dy /= norm;
  Image out(img.width(), img.height());
  common::ParallelFor(0, img.height(), /*grain=*/4, [&](std::int64_t y) {
    for (int x = 0; x < img.width(); ++x) {
      float r = 0, g = 0, b = 0;
      for (int k = 0; k < length; ++k) {
        const double t = k - (length - 1) * 0.5;
        const int sx = static_cast<int>(std::lround(x + dx * t));
        const int sy = static_cast<int>(std::lround(y + dy * t));
        const Rgb8 p = img.AtClamped(sx, sy);
        r += p.r;
        g += p.g;
        b += p.b;
      }
      const float inv = 1.0f / length;
      out(x, static_cast<int>(y)) = {ToU8(r * inv), ToU8(g * inv),
                                     ToU8(b * inv)};
    }
  });
  return out;
}

FloatImage AbsDiff(const Image& a, const Image& b) {
  RequireSameShape(a, b, "AbsDiff");
  FloatImage out(a.width(), a.height());
  kernels::AbsDiffMax(a.pixels(), b.pixels(), out.pixels());
  return out;
}

Bitmap Threshold(const FloatImage& img, float threshold) {
  Bitmap out(img.width(), img.height());
  kernels::ThresholdGE(img.pixels(), threshold, out.pixels());
  return out;
}

Bitmap MedianFilter3(const Bitmap& mask) {
  Bitmap out(mask.width(), mask.height());
  common::ParallelFor(0, mask.height(), /*grain=*/32, [&](std::int64_t yy) {
    const int y = static_cast<int>(yy);
    for (int x = 0; x < mask.width(); ++x) {
      int set = 0, total = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (!mask.InBounds(x + dx, y + dy)) continue;
          ++total;
          set += mask(x + dx, y + dy) != 0;
        }
      }
      out(x, y) = (2 * set > total) ? kMaskSet : kMaskClear;
    }
  });
  return out;
}

}  // namespace bb::imaging
