// Minimal 5x7 bitmap font.
//
// The synthetic scene generator renders text (sticky notes, posters, book
// spines) with this font, and the text-inference attack's OCR substitute
// (detect/ocr.h) recognizes glyphs by correlating against the same tables -
// mirroring the paper's TextFuseNet setup where the recognizer is trained on
// the same character shapes that appear in the world.
#pragma once

#include <optional>
#include <string_view>

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::imaging {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;

// Returns the 7 row bitmasks (bit 4 = leftmost column) for a supported
// character, or nullopt. Supported: 'A'-'Z', '0'-'9', ' ', '.', '-', '!',
// '?', ':'. Lowercase letters map to uppercase.
std::optional<const std::uint8_t*> GlyphRows(char c);

// True when GlyphRows(c) would succeed.
bool IsRenderable(char c);

// Draws `text` with its top-left corner at (x, y); each glyph cell is
// kGlyphWidth x kGlyphHeight pixels scaled by `scale`, with one scaled column
// of spacing between glyphs. Characters without a glyph advance the cursor
// but draw nothing. Returns the bounding rectangle of the rendered text.
Rect DrawText(Image& img, int x, int y, int scale, Rgb8 color,
              std::string_view text);

// Pixel width of `text` at the given scale (matches DrawText's advance).
int TextWidth(std::string_view text, int scale);

// Renders a single glyph into a fresh kGlyphWidth x kGlyphHeight bitmap
// (1 = ink). Returns an empty bitmap for unsupported characters.
Bitmap GlyphBitmap(char c);

}  // namespace bb::imaging
