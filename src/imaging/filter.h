// Spatial filters.
//
// The virtual-background engine uses Gaussian blur for the blending ring
// (paper sec. III, Fig. 1) and motion blur to model fast limb movement
// (which the paper observed makes the matting engine confuse foreground and
// background, sec. VIII-C "Effect of Movement").
#pragma once

#include "imaging/image.h"

namespace bb::imaging {

// Separable box blur with an odd kernel of the given radius (window size
// 2*radius+1). radius <= 0 returns the input unchanged.
Image BoxBlur(const Image& img, int radius);
FloatImage BoxBlur(const FloatImage& img, int radius);

// Separable Gaussian blur with standard deviation `sigma` (kernel truncated
// at 3 sigma). sigma <= 0 returns the input unchanged.
Image GaussianBlur(const Image& img, double sigma);

// Directional (linear) motion blur: averages `length` samples along the unit
// direction (dx, dy). length <= 1 returns the input unchanged.
Image MotionBlur(const Image& img, double dx, double dy, int length);

// Per-pixel absolute difference, max over channels, as a float image in
// [0, 255].
FloatImage AbsDiff(const Image& a, const Image& b);

// Thresholds a float image: out = (img >= threshold).
Bitmap Threshold(const FloatImage& img, float threshold);

// 3x3 median filter on a bitmap (despeckles masks).
Bitmap MedianFilter3(const Bitmap& mask);

}  // namespace bb::imaging
