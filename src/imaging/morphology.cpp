#include "imaging/morphology.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "imaging/kernels/kernels.h"

namespace bb::imaging {

namespace {

constexpr float kInf = std::numeric_limits<float>::max() / 4.0f;

// 1-D squared distance transform (Felzenszwalb & Huttenlocher 2012).
void Dt1d(const float* f, float* d, int n, int* v, float* z) {
  int k = 0;
  v[0] = 0;
  z[0] = -kInf;
  z[1] = kInf;
  for (int q = 1; q < n; ++q) {
    float s = ((f[q] + static_cast<float>(q) * q) -
               (f[v[k]] + static_cast<float>(v[k]) * v[k])) /
              (2.0f * (q - v[k]));
    while (s <= z[k]) {
      --k;
      s = ((f[q] + static_cast<float>(q) * q) -
           (f[v[k]] + static_cast<float>(v[k]) * v[k])) /
          (2.0f * (q - v[k]));
    }
    ++k;
    v[k] = q;
    z[k] = s;
    z[k + 1] = kInf;
  }
  k = 0;
  for (int q = 0; q < n; ++q) {
    while (z[k + 1] < static_cast<float>(q)) ++k;
    const float dq = static_cast<float>(q - v[k]);
    d[q] = dq * dq + f[v[k]];
  }
}

}  // namespace

FloatImage SquaredDistanceToSet(const Bitmap& mask) {
  const int w = mask.width(), h = mask.height();
  FloatImage dist(w, h);
  if (w == 0 || h == 0) return dist;

  // Initialize: 0 inside the set, +inf outside.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      dist(x, y) = mask(x, y) ? 0.0f : kInf;
    }
  }

  const int n = std::max(w, h);
  std::vector<float> f(n), d(n), z(n + 1);
  std::vector<int> v(n);

  // Transform along columns.
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h; ++y) f[y] = dist(x, y);
    Dt1d(f.data(), d.data(), h, v.data(), z.data());
    for (int y = 0; y < h; ++y) dist(x, y) = d[y];
  }
  // Transform along rows.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) f[x] = dist(x, y);
    Dt1d(f.data(), d.data(), w, v.data(), z.data());
    for (int x = 0; x < w; ++x) dist(x, y) = d[x];
  }
  return dist;
}

Bitmap DilateDisc(const Bitmap& mask, double radius) {
  if (radius <= 0.0) return mask;
  const FloatImage dist = SquaredDistanceToSet(mask);
  const float r2 = static_cast<float>(radius * radius);
  Bitmap out(mask.width(), mask.height());
  kernels::ThresholdLE(dist.pixels(), r2, out.pixels());
  return out;
}

Bitmap ErodeDisc(const Bitmap& mask, double radius) {
  if (radius <= 0.0) return mask;
  return Not(DilateDisc(Not(mask), radius));
}

Bitmap OpenDisc(const Bitmap& mask, double radius) {
  return DilateDisc(ErodeDisc(mask, radius), radius);
}

Bitmap CloseDisc(const Bitmap& mask, double radius) {
  return ErodeDisc(DilateDisc(mask, radius), radius);
}

Bitmap BoundaryRing(const Bitmap& mask, double radius) {
  return AndNot(DilateDisc(mask, radius), mask);
}

}  // namespace bb::imaging
