// Core image container used throughout Background Buster.
//
// An ImageT<P> is a dense row-major 2-D array of pixels of type P. The
// library works with three concrete instantiations:
//   Image      = ImageT<Rgb8>    - 24-bit true-color frames (paper sec. III)
//   Bitmap     = ImageT<uint8_t> - binary masks (VBM / BBM / VCM / LB)
//   FloatImage = ImageT<float>   - intermediate filter results
//
// Coordinates are (x, y) with x the column in [0, width) and y the row in
// [0, height). All accessors are bounds-checked via assert in debug builds;
// at() additionally throws std::out_of_range in all builds so that callers
// exercising untrusted coordinates get a deterministic failure.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "imaging/kernels/pixel.h"

namespace bb::imaging {

// Rgb8 and the kMaskSet/kMaskClear mask values now live in
// imaging/kernels/pixel.h (same namespace) so the kernel layer can stay at
// the bottom of the include graph.

template <typename P>
class ImageT {
 public:
  using Pixel = P;

  ImageT() = default;

  ImageT(int width, int height, P fill = P{})
      : width_(width), height_(height) {
    if (width < 0 || height < 0) {
      throw std::invalid_argument("ImageT: negative dimensions");
    }
    pixels_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  ImageT(const ImageT&) = default;
  ImageT& operator=(const ImageT&) = default;

  // Moves leave the source as an empty 0x0 image. The defaulted move would
  // keep the old width/height on a storage-less image, which silently defeats
  // shape-based reshape checks (e.g. pooled/streamed frame buffers).
  ImageT(ImageT&& other) noexcept
      : width_(std::exchange(other.width_, 0)),
        height_(std::exchange(other.height_, 0)),
        pixels_(std::move(other.pixels_)) {
    other.pixels_.clear();
  }
  ImageT& operator=(ImageT&& other) noexcept {
    if (this != &other) {
      width_ = std::exchange(other.width_, 0);
      height_ = std::exchange(other.height_, 0);
      pixels_ = std::move(other.pixels_);
      other.pixels_.clear();
    }
    return *this;
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  std::size_t pixel_count() const { return pixels_.size(); }

  bool InBounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  bool SameShape(const ImageT& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

  // Unchecked (assert-only) accessors for hot loops.
  P& operator()(int x, int y) {
    assert(InBounds(x, y));
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  const P& operator()(int x, int y) const {
    assert(InBounds(x, y));
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  // Checked accessors.
  P& at(int x, int y) {
    if (!InBounds(x, y)) throw std::out_of_range("ImageT::at");
    return (*this)(x, y);
  }
  const P& at(int x, int y) const {
    if (!InBounds(x, y)) throw std::out_of_range("ImageT::at");
    return (*this)(x, y);
  }

  // Clamped read: coordinates outside the image read the nearest edge pixel.
  const P& AtClamped(int x, int y) const {
    if (x < 0) x = 0;
    if (y < 0) y = 0;
    if (x >= width_) x = width_ - 1;
    if (y >= height_) y = height_ - 1;
    return (*this)(x, y);
  }

  // Read with a default for out-of-bounds coordinates.
  P AtOr(int x, int y, P fallback) const {
    return InBounds(x, y) ? (*this)(x, y) : fallback;
  }

  void Fill(P value) {
    for (auto& p : pixels_) p = value;
  }

  std::span<P> pixels() { return pixels_; }
  std::span<const P> pixels() const { return pixels_; }

  // A whole row as a span of exactly width() pixels, so row-wise kernels
  // keep bounds information instead of decaying to a raw pointer.
  std::span<P> row(int y) {
    assert(y >= 0 && y < height_);
    return {pixels_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }
  std::span<const P> row(int y) const {
    assert(y >= 0 && y < height_);
    return {pixels_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }

  bool operator==(const ImageT& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<P> pixels_;
};

using Image = ImageT<Rgb8>;
using Bitmap = ImageT<std::uint8_t>;
using FloatImage = ImageT<float>;

// --- Bitmap helpers -------------------------------------------------------

// Number of set (non-zero) pixels in a mask.
std::size_t CountSet(const Bitmap& mask);

// Fraction of set pixels, in [0, 1]. Returns 0 for an empty mask.
double SetFraction(const Bitmap& mask);

// Pixel-wise boolean operations. All operands must share the same shape.
Bitmap And(const Bitmap& a, const Bitmap& b);
Bitmap Or(const Bitmap& a, const Bitmap& b);
Bitmap AndNot(const Bitmap& a, const Bitmap& b);  // a & ~b
Bitmap Not(const Bitmap& a);

// Intersection-over-union of two masks; 1.0 when both are empty.
double Iou(const Bitmap& a, const Bitmap& b);

// Throws std::invalid_argument unless both images have identical shape.
template <typename A, typename B>
void RequireSameShape(const ImageT<A>& a, const ImageT<B>& b,
                      const char* what) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument(std::string("shape mismatch in ") + what);
  }
}

}  // namespace bb::imaging
