#include "imaging/color.h"

#include <algorithm>
#include <cmath>

namespace bb::imaging {

namespace {
std::uint8_t ClampChannel(float v) {
  if (v <= 0.0f) return 0;
  if (v >= 255.0f) return 255;
  return static_cast<std::uint8_t>(v + 0.5f);
}
}  // namespace

Rgb8 HsvToRgb(const Hsv& c) {
  float h = std::fmod(c.h, 360.0f);
  if (h < 0.0f) h += 360.0f;
  const float s = std::clamp(c.s, 0.0f, 1.0f);
  const float v = std::clamp(c.v, 0.0f, 1.0f);

  const float chroma = v * s;
  const float hp = h / 60.0f;
  const float x = chroma * (1.0f - std::fabs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  if (hp < 1) {
    r = chroma; g = x;
  } else if (hp < 2) {
    r = x; g = chroma;
  } else if (hp < 3) {
    g = chroma; b = x;
  } else if (hp < 4) {
    g = x; b = chroma;
  } else if (hp < 5) {
    r = x; b = chroma;
  } else {
    r = chroma; b = x;
  }
  const float m = v - chroma;
  return {ClampChannel((r + m) * 255.0f), ClampChannel((g + m) * 255.0f),
          ClampChannel((b + m) * 255.0f)};
}

float Luma(Rgb8 c) { return 0.299f * c.r + 0.587f * c.g + 0.114f * c.b; }

float RgbDistance(Rgb8 a, Rgb8 b) {
  const float dr = static_cast<float>(a.r) - b.r;
  const float dg = static_cast<float>(a.g) - b.g;
  const float db = static_cast<float>(a.b) - b.b;
  return std::sqrt(dr * dr + dg * dg + db * db);
}

Rgb8 Scaled(Rgb8 c, float gain) {
  return {ClampChannel(c.r * gain), ClampChannel(c.g * gain),
          ClampChannel(c.b * gain)};
}

}  // namespace bb::imaging
