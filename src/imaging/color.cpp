#include "imaging/color.h"

#include <algorithm>
#include <cmath>

namespace bb::imaging {

namespace {
std::uint8_t ClampChannel(float v) {
  if (v <= 0.0f) return 0;
  if (v >= 255.0f) return 255;
  return static_cast<std::uint8_t>(v + 0.5f);
}
}  // namespace

Hsv RgbToHsv(Rgb8 c) {
  const float r = c.r / 255.0f;
  const float g = c.g / 255.0f;
  const float b = c.b / 255.0f;
  const float mx = std::max({r, g, b});
  const float mn = std::min({r, g, b});
  const float d = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = (mx <= 0.0f) ? 0.0f : d / mx;
  if (d <= 0.0f) {
    out.h = 0.0f;
  } else if (mx == r) {
    out.h = 60.0f * std::fmod((g - b) / d, 6.0f);
  } else if (mx == g) {
    out.h = 60.0f * ((b - r) / d + 2.0f);
  } else {
    out.h = 60.0f * ((r - g) / d + 4.0f);
  }
  if (out.h < 0.0f) out.h += 360.0f;
  return out;
}

Rgb8 HsvToRgb(const Hsv& c) {
  float h = std::fmod(c.h, 360.0f);
  if (h < 0.0f) h += 360.0f;
  const float s = std::clamp(c.s, 0.0f, 1.0f);
  const float v = std::clamp(c.v, 0.0f, 1.0f);

  const float chroma = v * s;
  const float hp = h / 60.0f;
  const float x = chroma * (1.0f - std::fabs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  if (hp < 1) {
    r = chroma; g = x;
  } else if (hp < 2) {
    r = x; g = chroma;
  } else if (hp < 3) {
    g = chroma; b = x;
  } else if (hp < 4) {
    g = x; b = chroma;
  } else if (hp < 5) {
    r = x; b = chroma;
  } else {
    r = chroma; b = x;
  }
  const float m = v - chroma;
  return {ClampChannel((r + m) * 255.0f), ClampChannel((g + m) * 255.0f),
          ClampChannel((b + m) * 255.0f)};
}

float HueDistance(float h1, float h2) {
  float d = std::fabs(std::fmod(h1, 360.0f) - std::fmod(h2, 360.0f));
  if (d > 180.0f) d = 360.0f - d;
  return d;
}

float Luma(Rgb8 c) { return 0.299f * c.r + 0.587f * c.g + 0.114f * c.b; }

float RgbDistance(Rgb8 a, Rgb8 b) {
  const float dr = static_cast<float>(a.r) - b.r;
  const float dg = static_cast<float>(a.g) - b.g;
  const float db = static_cast<float>(a.b) - b.b;
  return std::sqrt(dr * dr + dg * dg + db * db);
}

bool NearlyEqual(Rgb8 a, Rgb8 b, int channel_tolerance) {
  return std::abs(a.r - b.r) <= channel_tolerance &&
         std::abs(a.g - b.g) <= channel_tolerance &&
         std::abs(a.b - b.b) <= channel_tolerance;
}

Rgb8 Lerp(Rgb8 a, Rgb8 b, float t) {
  t = std::clamp(t, 0.0f, 1.0f);
  return {ClampChannel(a.r + (b.r - a.r) * t),
          ClampChannel(a.g + (b.g - a.g) * t),
          ClampChannel(a.b + (b.b - a.b) * t)};
}

Rgb8 Scaled(Rgb8 c, float gain) {
  return {ClampChannel(c.r * gain), ClampChannel(c.g * gain),
          ClampChannel(c.b * gain)};
}

}  // namespace bb::imaging
