// Geometric transforms.
//
// The location-inference and object-tracking attacks (paper sec. VI) search
// over incremental rotations, shifts and scales of the reconstructed
// background; these are the primitives they sweep with.
#pragma once

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::imaging {

// Translates the image by (dx, dy); uncovered pixels take `fill`.
Image Shift(const Image& img, int dx, int dy, Rgb8 fill = {});
Bitmap Shift(const Bitmap& mask, int dx, int dy, std::uint8_t fill = 0);

// Rotates around the image center by `degrees` (counter-clockwise) with
// nearest-neighbour sampling; uncovered pixels take `fill`.
Image Rotate(const Image& img, double degrees, Rgb8 fill = {});
Bitmap Rotate(const Bitmap& mask, double degrees, std::uint8_t fill = 0);

// Rotate that additionally reports which output pixels were sampled from
// inside the source (`valid` set) vs. took the fill color (clear). Callers
// that must distinguish genuine source pixels from rotation filler - e.g.
// template matching against dark objects whose pixels equal the default
// fill - test the validity mask instead of a sentinel color.
Image Rotate(const Image& img, double degrees, Bitmap* valid,
             Rgb8 fill = {});

// Resizes to (new_w, new_h) with nearest-neighbour sampling.
Image ResizeNearest(const Image& img, int new_w, int new_h);
Bitmap ResizeNearest(const Bitmap& mask, int new_w, int new_h);

// Buffer-reusing variants for pooled callers (template derivation caches):
// identical pixels to the value-returning forms, but write into `out`
// (reshaped only when its dimensions differ).
void ResizeNearestInto(const Image& img, int new_w, int new_h, Image* out);
void RotateInto(const Image& img, double degrees, Bitmap* valid, Image* out,
                Rgb8 fill = {});

// Resizes with bilinear sampling (color images only).
Image ResizeBilinear(const Image& img, int new_w, int new_h);

// Mirror around the vertical axis.
Image FlipHorizontal(const Image& img);
Bitmap FlipHorizontal(const Bitmap& mask);

// Copies the sub-rectangle `r` (clipped to bounds) into a new image.
Image Crop(const Image& img, const Rect& r);
Bitmap Crop(const Bitmap& mask, const Rect& r);

// Pastes `src` into `dst` with its top-left corner at (x, y), clipping.
void Paste(Image& dst, const Image& src, int x, int y);

}  // namespace bb::imaging
