#include "imaging/transform.h"

#include <algorithm>
#include <cmath>

namespace bb::imaging {

namespace {

template <typename P>
ImageT<P> ShiftImpl(const ImageT<P>& img, int dx, int dy, P fill) {
  ImageT<P> out(img.width(), img.height(), fill);
  for (int y = 0; y < img.height(); ++y) {
    const int sy = y - dy;
    if (sy < 0 || sy >= img.height()) continue;
    for (int x = 0; x < img.width(); ++x) {
      const int sx = x - dx;
      if (sx < 0 || sx >= img.width()) continue;
      out(x, y) = img(sx, sy);
    }
  }
  return out;
}

template <typename P>
ImageT<P> RotateImpl(const ImageT<P>& img, double degrees, P fill,
                     Bitmap* valid) {
  ImageT<P> out(img.width(), img.height(), fill);
  if (valid) *valid = Bitmap(img.width(), img.height(), kMaskClear);
  const double rad = degrees * 3.14159265358979323846 / 180.0;
  const double c = std::cos(rad), s = std::sin(rad);
  const double cx = (img.width() - 1) * 0.5;
  const double cy = (img.height() - 1) * 0.5;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      // Inverse mapping: rotate destination coords by -degrees.
      const double rx = (x - cx) * c + (y - cy) * s + cx;
      const double ry = -(x - cx) * s + (y - cy) * c + cy;
      const int sx = static_cast<int>(std::lround(rx));
      const int sy = static_cast<int>(std::lround(ry));
      if (img.InBounds(sx, sy)) {
        out(x, y) = img(sx, sy);
        if (valid) (*valid)(x, y) = kMaskSet;
      }
    }
  }
  return out;
}

template <typename P>
ImageT<P> ResizeNearestImpl(const ImageT<P>& img, int new_w, int new_h) {
  ImageT<P> out(new_w, new_h);
  if (img.empty() || new_w <= 0 || new_h <= 0) return out;
  for (int y = 0; y < new_h; ++y) {
    const int sy = std::min(
        img.height() - 1,
        static_cast<int>((static_cast<long long>(y) * img.height()) / new_h));
    for (int x = 0; x < new_w; ++x) {
      const int sx = std::min(
          img.width() - 1,
          static_cast<int>((static_cast<long long>(x) * img.width()) / new_w));
      out(x, y) = img(sx, sy);
    }
  }
  return out;
}

template <typename P>
ImageT<P> CropImpl(const ImageT<P>& img, const Rect& r) {
  const Rect clipped = r.Intersect({0, 0, img.width(), img.height()});
  ImageT<P> out(clipped.w, clipped.h);
  for (int y = 0; y < clipped.h; ++y) {
    for (int x = 0; x < clipped.w; ++x) {
      out(x, y) = img(clipped.x + x, clipped.y + y);
    }
  }
  return out;
}

}  // namespace

Image Shift(const Image& img, int dx, int dy, Rgb8 fill) {
  return ShiftImpl(img, dx, dy, fill);
}
Bitmap Shift(const Bitmap& mask, int dx, int dy, std::uint8_t fill) {
  return ShiftImpl(mask, dx, dy, fill);
}

Image Rotate(const Image& img, double degrees, Rgb8 fill) {
  return RotateImpl(img, degrees, fill, nullptr);
}
Bitmap Rotate(const Bitmap& mask, double degrees, std::uint8_t fill) {
  return RotateImpl(mask, degrees, fill, nullptr);
}
Image Rotate(const Image& img, double degrees, Bitmap* valid, Rgb8 fill) {
  return RotateImpl(img, degrees, fill, valid);
}

Image ResizeNearest(const Image& img, int new_w, int new_h) {
  return ResizeNearestImpl(img, new_w, new_h);
}
Bitmap ResizeNearest(const Bitmap& mask, int new_w, int new_h) {
  return ResizeNearestImpl(mask, new_w, new_h);
}

void ResizeNearestInto(const Image& img, int new_w, int new_h, Image* out) {
  new_w = std::max(new_w, 0);
  new_h = std::max(new_h, 0);
  if (out->width() != new_w || out->height() != new_h) {
    *out = Image(new_w, new_h);
  }
  if (img.empty() || new_w <= 0 || new_h <= 0) return;
  for (int y = 0; y < new_h; ++y) {
    const int sy = std::min(
        img.height() - 1,
        static_cast<int>((static_cast<long long>(y) * img.height()) / new_h));
    for (int x = 0; x < new_w; ++x) {
      const int sx = std::min(
          img.width() - 1,
          static_cast<int>((static_cast<long long>(x) * img.width()) / new_w));
      (*out)(x, y) = img(sx, sy);
    }
  }
}

void RotateInto(const Image& img, double degrees, Bitmap* valid, Image* out,
                Rgb8 fill) {
  if (out->width() != img.width() || out->height() != img.height()) {
    *out = Image(img.width(), img.height());
  }
  std::fill(out->pixels().begin(), out->pixels().end(), fill);
  if (valid) {
    if (valid->width() != img.width() || valid->height() != img.height()) {
      *valid = Bitmap(img.width(), img.height());
    }
    std::fill(valid->pixels().begin(), valid->pixels().end(), kMaskClear);
  }
  const double rad = degrees * 3.14159265358979323846 / 180.0;
  const double c = std::cos(rad), s = std::sin(rad);
  const double cx = (img.width() - 1) * 0.5;
  const double cy = (img.height() - 1) * 0.5;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double rx = (x - cx) * c + (y - cy) * s + cx;
      const double ry = -(x - cx) * s + (y - cy) * c + cy;
      const int sx = static_cast<int>(std::lround(rx));
      const int sy = static_cast<int>(std::lround(ry));
      if (img.InBounds(sx, sy)) {
        (*out)(x, y) = img(sx, sy);
        if (valid) (*valid)(x, y) = kMaskSet;
      }
    }
  }
}

Image ResizeBilinear(const Image& img, int new_w, int new_h) {
  Image out(new_w, new_h);
  if (img.empty() || new_w <= 0 || new_h <= 0) return out;
  const double sx_step = static_cast<double>(img.width()) / new_w;
  const double sy_step = static_cast<double>(img.height()) / new_h;
  for (int y = 0; y < new_h; ++y) {
    const double fy = std::min((y + 0.5) * sy_step - 0.5,
                               static_cast<double>(img.height() - 1));
    const int y0 = std::max(0, static_cast<int>(std::floor(fy)));
    const int y1 = std::min(img.height() - 1, y0 + 1);
    const double wy = std::clamp(fy - y0, 0.0, 1.0);
    for (int x = 0; x < new_w; ++x) {
      const double fx = std::min((x + 0.5) * sx_step - 0.5,
                                 static_cast<double>(img.width() - 1));
      const int x0 = std::max(0, static_cast<int>(std::floor(fx)));
      const int x1 = std::min(img.width() - 1, x0 + 1);
      const double wx = std::clamp(fx - x0, 0.0, 1.0);
      auto blend = [&](auto get) {
        const double top = get(img(x0, y0)) * (1 - wx) + get(img(x1, y0)) * wx;
        const double bot = get(img(x0, y1)) * (1 - wx) + get(img(x1, y1)) * wx;
        const double v = top * (1 - wy) + bot * wy;
        return static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0));
      };
      out(x, y) = {blend([](Rgb8 p) { return static_cast<double>(p.r); }),
                   blend([](Rgb8 p) { return static_cast<double>(p.g); }),
                   blend([](Rgb8 p) { return static_cast<double>(p.b); })};
    }
  }
  return out;
}

namespace {
template <typename P>
ImageT<P> FlipHorizontalImpl(const ImageT<P>& img) {
  ImageT<P> out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out(x, y) = img(img.width() - 1 - x, y);
    }
  }
  return out;
}
}  // namespace

Image FlipHorizontal(const Image& img) { return FlipHorizontalImpl(img); }
Bitmap FlipHorizontal(const Bitmap& mask) {
  return FlipHorizontalImpl(mask);
}

Image Crop(const Image& img, const Rect& r) { return CropImpl(img, r); }
Bitmap Crop(const Bitmap& mask, const Rect& r) { return CropImpl(mask, r); }

void Paste(Image& dst, const Image& src, int x, int y) {
  for (int sy = 0; sy < src.height(); ++sy) {
    const int dy = y + sy;
    if (dy < 0 || dy >= dst.height()) continue;
    for (int sx = 0; sx < src.width(); ++sx) {
      const int dx = x + sx;
      if (dx < 0 || dx >= dst.width()) continue;
      dst(dx, dy) = src(sx, sy);
    }
  }
}

}  // namespace bb::imaging
