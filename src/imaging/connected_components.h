// Connected-component labeling on binary masks.
//
// Used by the generic-object detectors to isolate candidate blobs in the
// reconstructed background, and by the matting model to drop tiny spurious
// mask islands.
#pragma once

#include <vector>

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::imaging {

struct Component {
  int label = 0;        // 1-based label as stored in the label image
  Rect bbox;            // tight bounding box
  std::size_t area = 0; // number of pixels
  PointF centroid;      // mean pixel position
};

struct Labeling {
  ImageT<int> labels;               // 0 = background, 1..N = components
  std::vector<Component> components;
};

enum class Connectivity { kFour, kEight };

// Labels all connected components of set pixels (4-connectivity by
// default; 8-connectivity also links diagonal neighbours).
Labeling LabelComponents(const Bitmap& mask,
                         Connectivity connectivity = Connectivity::kFour);

// Removes components with fewer than `min_area` pixels.
Bitmap RemoveSmallComponents(const Bitmap& mask, std::size_t min_area);

// Keeps only the single largest component (empty mask stays empty).
Bitmap LargestComponent(const Bitmap& mask);

}  // namespace bb::imaging
