// Pixel-level value types and per-element math shared by the kernel layer
// and the rest of imaging/.
//
// This header is the bottom of the imaging stack: src/imaging/kernels/ may
// include nothing above it, and imaging/image.h / imaging/color.h re-export
// these names (same bb::imaging namespace) so existing call sites are
// unaffected. Everything here is a pure per-element function: no loops, no
// accumulation, no allocation — the properties that make the scalar and
// vector kernel implementations bit-identical.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace bb::imaging {

// A 24-bit RGB pixel (Truecolor per paper sec. III).
struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  constexpr bool operator==(const Rgb8&) const = default;
};

// Common mask values. Masks in the paper are bitmaps whose pixels are either
// foreground (255,255,255) or background (0,0,0); we store one byte per
// pixel with 1 = set, 0 = clear.
inline constexpr std::uint8_t kMaskSet = 1;
inline constexpr std::uint8_t kMaskClear = 0;

// Hue in degrees [0, 360), saturation and value in [0, 1].
struct Hsv {
  float h = 0.0f;
  float s = 0.0f;
  float v = 0.0f;
};

// Rounds and clamps a float channel into [0, 255].
inline std::uint8_t ClampChannelU8(float v) {
  if (v <= 0.0f) return 0;
  if (v >= 255.0f) return 255;
  return static_cast<std::uint8_t>(v + 0.5f);
}

inline Hsv RgbToHsv(Rgb8 c) {
  const float r = c.r / 255.0f;
  const float g = c.g / 255.0f;
  const float b = c.b / 255.0f;
  const float mx = std::max(std::max(r, g), b);
  const float mn = std::min(std::min(r, g), b);
  const float d = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = (mx <= 0.0f) ? 0.0f : d / mx;
  if (d <= 0.0f) {
    out.h = 0.0f;
  } else if (mx == r) {
    out.h = 60.0f * std::fmod((g - b) / d, 6.0f);
  } else if (mx == g) {
    out.h = 60.0f * ((b - r) / d + 2.0f);
  } else {
    out.h = 60.0f * ((r - g) / d + 4.0f);
  }
  if (out.h < 0.0f) out.h += 360.0f;
  return out;
}

// Shortest angular distance between two hues, in [0, 180].
inline float HueDistance(float h1, float h2) {
  float d = std::fabs(std::fmod(h1, 360.0f) - std::fmod(h2, 360.0f));
  if (d > 180.0f) d = 360.0f - d;
  return d;
}

// True when the two colors match within the given per-channel tolerance.
inline bool NearlyEqual(Rgb8 a, Rgb8 b, int channel_tolerance) {
  return std::abs(a.r - b.r) <= channel_tolerance &&
         std::abs(a.g - b.g) <= channel_tolerance &&
         std::abs(a.b - b.b) <= channel_tolerance;
}

// Linear interpolation between two colors; t in [0, 1] (clamped).
inline Rgb8 Lerp(Rgb8 a, Rgb8 b, float t) {
  if (t < 0.0f) t = 0.0f;
  if (t > 1.0f) t = 1.0f;
  return {ClampChannelU8(a.r + (b.r - a.r) * t),
          ClampChannelU8(a.g + (b.g - a.g) * t),
          ClampChannelU8(a.b + (b.b - a.b) * t)};
}

// A color "bucket" used by the statistical color-frequency refinement of the
// video-caller mask (paper sec. V-D) and by the hue histograms in the
// attacks. Quantizes RGB to a small key so frequencies can be counted in a
// flat array.
//
// Layout: 4 bits per channel -> 4096 buckets.
inline constexpr int kColorBucketCount = 4096;
inline int ColorBucket(Rgb8 c) {
  return ((c.r >> 4) << 8) | ((c.g >> 4) << 4) | (c.b >> 4);
}

}  // namespace bb::imaging
