// Scalar reference implementation of the kernel catalog: the simplest
// possible loops, the ground truth the vector implementation must match
// bit-for-bit (tests/imaging/kernels_test.cpp runs the identity matrix).
#include <algorithm>
#include <cassert>

#include "imaging/kernels/kernels.h"

namespace bb::imaging::kernels::scalar {

void MaskAnd(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (a[i] && b[i]) ? kMaskSet : kMaskClear;
  }
}

void MaskOr(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
            std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (a[i] || b[i]) ? kMaskSet : kMaskClear;
  }
}

void MaskAndNot(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (a[i] && !b[i]) ? kMaskSet : kMaskClear;
  }
}

void MaskNot(std::span<const std::uint8_t> a, std::span<std::uint8_t> out) {
  assert(a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a[i] ? kMaskClear : kMaskSet;
  }
}

void MaskNor(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (!a[i] && !b[i]) ? kMaskSet : kMaskClear;
  }
}

std::size_t CountSet(std::span<const std::uint8_t> m) {
  std::size_t n = 0;
  for (std::uint8_t v : m) n += (v != 0);
  return n;
}

void CountAndOr(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::uint64_t* inter,
                std::uint64_t* uni) {
  assert(a.size() == b.size());
  std::uint64_t in = 0, un = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool sa = a[i] != 0, sb = b[i] != 0;
    in += (sa && sb);
    un += (sa || sb);
  }
  *inter = in;
  *uni = un;
}

void CountMaskedPair(std::span<const std::uint8_t> region,
                     std::span<const std::uint8_t> m, std::uint64_t* total,
                     std::uint64_t* masked) {
  assert(region.size() == m.size());
  std::uint64_t t = 0, k = 0;
  for (std::size_t i = 0; i < region.size(); ++i) {
    if (!region[i]) continue;
    ++t;
    k += (m[i] != 0);
  }
  *total = t;
  *masked = k;
}

void SelectRgb(std::span<const std::uint8_t> m, std::span<const Rgb8> a,
               std::span<const Rgb8> b, std::span<Rgb8> out) {
  assert(m.size() == a.size() && a.size() == b.size() &&
         b.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = m[i] ? a[i] : b[i];
  }
}

void MaskToFloat(std::span<const std::uint8_t> m, std::span<float> out) {
  assert(m.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = m[i] ? 1.0f : 0.0f;
  }
}

void LerpRgb(std::span<const Rgb8> a, std::span<const Rgb8> b,
             std::span<const float> alpha, std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == alpha.size() &&
         a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Lerp(a[i], b[i], alpha[i]);
  }
}

void AddSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int r = a[i].r + b[i].r;
    const int g = a[i].g + b[i].g;
    const int bl = a[i].b + b[i].b;
    out[i] = {static_cast<std::uint8_t>(r > 255 ? 255 : r),
              static_cast<std::uint8_t>(g > 255 ? 255 : g),
              static_cast<std::uint8_t>(bl > 255 ? 255 : bl)};
  }
}

void SubSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int r = a[i].r - b[i].r;
    const int g = a[i].g - b[i].g;
    const int bl = a[i].b - b[i].b;
    out[i] = {static_cast<std::uint8_t>(r < 0 ? 0 : r),
              static_cast<std::uint8_t>(g < 0 ? 0 : g),
              static_cast<std::uint8_t>(bl < 0 ? 0 : bl)};
  }
}

void MatchMask(std::span<const Rgb8> frame, std::span<const Rgb8> ref,
               std::span<const std::uint8_t> valid, int tolerance,
               std::span<std::uint8_t> out) {
  assert(frame.size() == ref.size() && frame.size() == out.size());
  assert(valid.empty() || valid.size() == frame.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool eligible = valid.empty() || valid[i];
    out[i] = (eligible && NearlyEqual(frame[i], ref[i], tolerance))
                 ? kMaskSet
                 : kMaskClear;
  }
}

std::size_t MatchCountStrided(std::span<const Rgb8> a, std::span<const Rgb8> b,
                              int tolerance, std::size_t stride) {
  assert(a.size() == b.size() && stride >= 1);
  std::size_t matched = 0;
  for (std::size_t i = 0; i < a.size(); i += stride) {
    matched += NearlyEqual(a[i], b[i], tolerance);
  }
  return matched;
}

void ChangedUnion(std::span<const Rgb8> a, std::span<const Rgb8> b,
                  int tolerance, std::span<std::uint8_t> accum) {
  assert(a.size() == b.size() && a.size() == accum.size());
  for (std::size_t i = 0; i < accum.size(); ++i) {
    if (!NearlyEqual(a[i], b[i], tolerance)) accum[i] = kMaskSet;
  }
}

void CountClaimedVerified(std::span<const std::uint8_t> cov,
                          std::span<const Rgb8> recon,
                          std::span<const Rgb8> truth, int tolerance,
                          std::uint64_t* claimed, std::uint64_t* verified) {
  assert(cov.size() == recon.size() && cov.size() == truth.size());
  std::uint64_t c = 0, v = 0;
  for (std::size_t i = 0; i < cov.size(); ++i) {
    if (!cov[i]) continue;
    ++c;
    v += NearlyEqual(recon[i], truth[i], tolerance);
  }
  *claimed = c;
  *verified = v;
}

void AbsDiffMax(std::span<const Rgb8> a, std::span<const Rgb8> b,
                std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int dr = std::abs(a[i].r - b[i].r);
    const int dg = std::abs(a[i].g - b[i].g);
    const int db = std::abs(a[i].b - b[i].b);
    out[i] = static_cast<float>(std::max(std::max(dr, dg), db));
  }
}

std::uint64_t SadRgb(std::span<const Rgb8> a, std::span<const Rgb8> b) {
  assert(a.size() == b.size());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<std::uint64_t>(std::abs(a[i].r - b[i].r)) +
           static_cast<std::uint64_t>(std::abs(a[i].g - b[i].g)) +
           static_cast<std::uint64_t>(std::abs(a[i].b - b[i].b));
  }
  return sum;
}

std::uint64_t SadRgbBounded(std::span<const Rgb8> a, std::span<const Rgb8> b,
                            std::uint64_t bound) {
  assert(a.size() == b.size());
  constexpr std::size_t kChunk = 32;
  std::uint64_t sum = 0;
  for (std::size_t base = 0; base < a.size(); base += kChunk) {
    const std::size_t end = std::min(a.size(), base + kChunk);
    for (std::size_t i = base; i < end; ++i) {
      sum += static_cast<std::uint64_t>(std::abs(a[i].r - b[i].r)) +
             static_cast<std::uint64_t>(std::abs(a[i].g - b[i].g)) +
             static_cast<std::uint64_t>(std::abs(a[i].b - b[i].b));
    }
    if (sum > bound) return sum;
  }
  return sum;
}

void ThresholdGE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = in[i] >= threshold ? kMaskSet : kMaskClear;
  }
}

void ThresholdLE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = in[i] <= threshold ? kMaskSet : kMaskClear;
  }
}

void SplitRgb(std::span<const Rgb8> px, std::span<float> r, std::span<float> g,
              std::span<float> b) {
  assert(px.size() == r.size() && px.size() == g.size() &&
         px.size() == b.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    r[i] = px[i].r;
    g[i] = px[i].g;
    b[i] = px[i].b;
  }
}

void MergeRgb(std::span<const float> r, std::span<const float> g,
              std::span<const float> b, std::span<Rgb8> px) {
  assert(px.size() == r.size() && px.size() == g.size() &&
         px.size() == b.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = {ClampChannelU8(r[i]), ClampChannelU8(g[i]), ClampChannelU8(b[i])};
  }
}

void RgbToHsvSpan(std::span<const Rgb8> px, std::span<Hsv> out) {
  assert(px.size() == out.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    out[i] = RgbToHsv(px[i]);
  }
}

std::uint64_t ColorBucketHistogram(std::span<const Rgb8> px,
                                   std::span<const std::uint8_t> m,
                                   std::span<std::uint64_t> counts) {
  assert(px.size() == m.size());
  assert(counts.size() == static_cast<std::size_t>(kColorBucketCount));
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (!m[i]) continue;
    ++counts[static_cast<std::size_t>(ColorBucket(px[i]))];
    ++total;
  }
  return total;
}

std::uint64_t HueHistogramAccum(std::span<const Rgb8> px,
                                std::span<const std::uint8_t> m,
                                float min_saturation, float min_value,
                                std::span<std::uint64_t> bins) {
  assert(px.size() == m.size() && !bins.empty());
  std::uint64_t total = 0;
  const float nbins = static_cast<float>(bins.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (!m[i]) continue;
    const Hsv hsv = RgbToHsv(px[i]);
    if (hsv.s < min_saturation || hsv.v < min_value) continue;
    // Hue binning wants the floor, not the nearest bin.
    int bin = static_cast<int>(std::floor(hsv.h / 360.0f * nbins));
    if (bin < 0) bin = 0;
    if (bin >= static_cast<int>(bins.size())) {
      bin = static_cast<int>(bins.size()) - 1;
    }
    ++bins[static_cast<std::size_t>(bin)];
    ++total;
  }
  return total;
}

std::uint64_t MaskedSumRgb(std::span<const Rgb8> px,
                           std::span<const std::uint8_t> m, std::uint64_t* r,
                           std::uint64_t* g, std::uint64_t* b) {
  assert(px.size() == m.size());
  std::uint64_t sr = 0, sg = 0, sb = 0, n = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (!m[i]) continue;
    sr += px[i].r;
    sg += px[i].g;
    sb += px[i].b;
    ++n;
  }
  *r = sr;
  *g = sg;
  *b = sb;
  return n;
}

std::size_t MaskedAccumulateRgb(std::span<const Rgb8> frame,
                                std::span<const std::uint8_t> lb,
                                std::span<int> counts, std::span<double> sum_r,
                                std::span<double> sum_g,
                                std::span<double> sum_b,
                                std::span<double> sum_r2,
                                std::span<double> sum_g2,
                                std::span<double> sum_b2) {
  assert(frame.size() == lb.size() && frame.size() == counts.size());
  std::size_t leaked = 0;
  for (std::size_t p = 0; p < lb.size(); ++p) {
    if (!lb[p]) continue;
    ++leaked;
    ++counts[p];
    sum_r[p] += frame[p].r;
    sum_g[p] += frame[p].g;
    sum_b[p] += frame[p].b;
    sum_r2[p] += static_cast<double>(frame[p].r) * frame[p].r;
    sum_g2[p] += static_cast<double>(frame[p].g) * frame[p].g;
    sum_b2[p] += static_cast<double>(frame[p].b) * frame[p].b;
  }
  return leaked;
}

WindowScore MatchHsvBounded(std::span<const Hsv> tmpl,
                            std::span<const std::int32_t> xs,
                            std::span<const std::int32_t> ys,
                            std::span<const Hsv> grid, std::int32_t gw,
                            std::int32_t gh, std::span<const std::uint8_t> cov,
                            std::int32_t dx, std::int32_t dy,
                            const HsvMatchParams& p, std::int64_t best_matched,
                            std::int64_t best_compared, bool tie_wins,
                            std::int32_t min_compared) {
  assert(tmpl.size() == xs.size() && tmpl.size() == ys.size());
  assert(grid.size() ==
         static_cast<std::size_t>(gw) * static_cast<std::size_t>(gh));
  assert(cov.empty() || cov.size() == grid.size());
  constexpr std::size_t kChunk = 64;
  WindowScore ws;
  const std::size_t n = tmpl.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t end = std::min(n, base + kChunk);
    for (std::size_t k = base; k < end; ++k) {
      const std::int32_t x = xs[k] + dx;
      const std::int32_t y = ys[k] + dy;
      if (x < 0 || y < 0 || x >= gw || y >= gh) continue;
      const std::size_t idx =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(gw) +
          static_cast<std::size_t>(x);
      if (!cov.empty() && !cov[idx]) continue;
      ++ws.compared;
      ws.matched += HsvPixelsMatch(tmpl[k], grid[idx], p);
    }
    if (end == n) break;
    // Optimistic completion: every remaining sample is compared and
    // matches. (m + t) / (c + t) is nondecreasing in t for m <= c, so this
    // is an exact upper bound on the final score; abandoning on it can
    // never discard the incumbent-beating window (DESIGN.md section 15).
    const std::int64_t remaining = static_cast<std::int64_t>(n - end);
    const std::int64_t ub_m = ws.matched + remaining;
    const std::int64_t ub_c = ws.compared + remaining;
    const bool can_reach_min = ub_c >= min_compared;
    const bool can_beat =
        best_compared == 0 ||
        (tie_wins ? ub_m * best_compared >= best_matched * ub_c
                  : ub_m * best_compared > best_matched * ub_c);
    if (!can_reach_min || !can_beat) {
      ws.abandoned = true;
      return ws;
    }
  }
  return ws;
}

}  // namespace bb::imaging::kernels::scalar
