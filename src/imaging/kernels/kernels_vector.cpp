// Autovectorization-friendly implementation of the kernel catalog.
//
// Same per-element operations as the scalar reference, restructured so the
// compiler's vectorizer gets straight-line bodies: predicates are computed
// with bitwise & / | on 0-or-1 integers instead of short-circuit branches,
// selects are arithmetic, and the bounded kernels process fixed chunks with
// the abandon test only at chunk boundaries. Nothing here may change a
// result bit: integer kernels are exact, float kernels apply the identical
// per-element expressions in the identical order, and the only float sums
// (MaskedAccumulateRgb) add integer-valued terms, which is exact in any
// order.
#include <algorithm>
#include <cassert>

#include "imaging/kernels/kernels.h"

namespace bb::imaging::kernels::vec {

namespace {

// 0/1 predicate for NearlyEqual without short-circuit branches.
inline unsigned NearMask(Rgb8 a, Rgb8 b, int tol) {
  const int dr = a.r - b.r;
  const int dg = a.g - b.g;
  const int db = a.b - b.b;
  return static_cast<unsigned>((dr <= tol) & (-dr <= tol) & (dg <= tol) &
                               (-dg <= tol) & (db <= tol) & (-db <= tol));
}

}  // namespace

void MaskAnd(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] != 0) & (b[i] != 0));
  }
}

void MaskOr(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
            std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] | b[i]) != 0);
  }
}

void MaskAndNot(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] != 0) & (b[i] == 0));
  }
}

void MaskNot(std::span<const std::uint8_t> a, std::span<std::uint8_t> out) {
  assert(a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] == 0);
  }
}

void MaskNor(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] | b[i]) == 0);
  }
}

std::size_t CountSet(std::span<const std::uint8_t> m) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    n += static_cast<std::size_t>(m[i] != 0);
  }
  return n;
}

void CountAndOr(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::uint64_t* inter,
                std::uint64_t* uni) {
  assert(a.size() == b.size());
  std::uint64_t in = 0, un = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const unsigned sa = a[i] != 0, sb = b[i] != 0;
    in += (sa & sb);
    un += (sa | sb);
  }
  *inter = in;
  *uni = un;
}

void CountMaskedPair(std::span<const std::uint8_t> region,
                     std::span<const std::uint8_t> m, std::uint64_t* total,
                     std::uint64_t* masked) {
  assert(region.size() == m.size());
  std::uint64_t t = 0, k = 0;
  for (std::size_t i = 0; i < region.size(); ++i) {
    const unsigned in_region = region[i] != 0;
    t += in_region;
    k += in_region & static_cast<unsigned>(m[i] != 0);
  }
  *total = t;
  *masked = k;
}

void SelectRgb(std::span<const std::uint8_t> m, std::span<const Rgb8> a,
               std::span<const Rgb8> b, std::span<Rgb8> out) {
  assert(m.size() == a.size() && a.size() == b.size() &&
         b.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Arithmetic select: mask is 0x00 or 0xFF per byte.
    const std::uint8_t sel = static_cast<std::uint8_t>(-(m[i] != 0));
    out[i] = {static_cast<std::uint8_t>((a[i].r & sel) | (b[i].r & ~sel)),
              static_cast<std::uint8_t>((a[i].g & sel) | (b[i].g & ~sel)),
              static_cast<std::uint8_t>((a[i].b & sel) | (b[i].b & ~sel))};
  }
}

void MaskToFloat(std::span<const std::uint8_t> m, std::span<float> out) {
  assert(m.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(m[i] != 0);
  }
}

void LerpRgb(std::span<const Rgb8> a, std::span<const Rgb8> b,
             std::span<const float> alpha, std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == alpha.size() &&
         a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Lerp(a[i], b[i], alpha[i]);
  }
}

void AddSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int r = a[i].r + b[i].r;
    const int g = a[i].g + b[i].g;
    const int bl = a[i].b + b[i].b;
    out[i] = {static_cast<std::uint8_t>(std::min(r, 255)),
              static_cast<std::uint8_t>(std::min(g, 255)),
              static_cast<std::uint8_t>(std::min(bl, 255))};
  }
}

void SubSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int r = a[i].r - b[i].r;
    const int g = a[i].g - b[i].g;
    const int bl = a[i].b - b[i].b;
    out[i] = {static_cast<std::uint8_t>(std::max(r, 0)),
              static_cast<std::uint8_t>(std::max(g, 0)),
              static_cast<std::uint8_t>(std::max(bl, 0))};
  }
}

void MatchMask(std::span<const Rgb8> frame, std::span<const Rgb8> ref,
               std::span<const std::uint8_t> valid, int tolerance,
               std::span<std::uint8_t> out) {
  assert(frame.size() == ref.size() && frame.size() == out.size());
  assert(valid.empty() || valid.size() == frame.size());
  if (valid.empty()) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(NearMask(frame[i], ref[i], tolerance));
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        static_cast<unsigned>(valid[i] != 0) &
        NearMask(frame[i], ref[i], tolerance));
  }
}

std::size_t MatchCountStrided(std::span<const Rgb8> a, std::span<const Rgb8> b,
                              int tolerance, std::size_t stride) {
  assert(a.size() == b.size() && stride >= 1);
  std::size_t matched = 0;
  for (std::size_t i = 0; i < a.size(); i += stride) {
    matched += NearMask(a[i], b[i], tolerance);
  }
  return matched;
}

void ChangedUnion(std::span<const Rgb8> a, std::span<const Rgb8> b,
                  int tolerance, std::span<std::uint8_t> accum) {
  assert(a.size() == b.size() && a.size() == accum.size());
  for (std::size_t i = 0; i < accum.size(); ++i) {
    accum[i] = static_cast<std::uint8_t>(
        static_cast<unsigned>(accum[i] != 0) |
        (NearMask(a[i], b[i], tolerance) ^ 1u));
  }
}

void CountClaimedVerified(std::span<const std::uint8_t> cov,
                          std::span<const Rgb8> recon,
                          std::span<const Rgb8> truth, int tolerance,
                          std::uint64_t* claimed, std::uint64_t* verified) {
  assert(cov.size() == recon.size() && cov.size() == truth.size());
  std::uint64_t c = 0, v = 0;
  for (std::size_t i = 0; i < cov.size(); ++i) {
    const unsigned covered = cov[i] != 0;
    c += covered;
    v += covered & NearMask(recon[i], truth[i], tolerance);
  }
  *claimed = c;
  *verified = v;
}

void AbsDiffMax(std::span<const Rgb8> a, std::span<const Rgb8> b,
                std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int dr = a[i].r - b[i].r;
    const int dg = a[i].g - b[i].g;
    const int db = a[i].b - b[i].b;
    const int mr = dr < 0 ? -dr : dr;
    const int mg = dg < 0 ? -dg : dg;
    const int mb = db < 0 ? -db : db;
    out[i] = static_cast<float>(std::max(std::max(mr, mg), mb));
  }
}

std::uint64_t SadRgb(std::span<const Rgb8> a, std::span<const Rgb8> b) {
  assert(a.size() == b.size());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int dr = a[i].r - b[i].r;
    const int dg = a[i].g - b[i].g;
    const int db = a[i].b - b[i].b;
    sum += static_cast<std::uint64_t>((dr < 0 ? -dr : dr) +
                                      (dg < 0 ? -dg : dg) +
                                      (db < 0 ? -db : db));
  }
  return sum;
}

std::uint64_t SadRgbBounded(std::span<const Rgb8> a, std::span<const Rgb8> b,
                            std::uint64_t bound) {
  assert(a.size() == b.size());
  constexpr std::size_t kChunk = 32;  // must match the scalar reference
  std::uint64_t sum = 0;
  for (std::size_t base = 0; base < a.size(); base += kChunk) {
    const std::size_t end = std::min(a.size(), base + kChunk);
    std::uint64_t chunk = 0;
    for (std::size_t i = base; i < end; ++i) {
      const int dr = a[i].r - b[i].r;
      const int dg = a[i].g - b[i].g;
      const int db = a[i].b - b[i].b;
      chunk += static_cast<std::uint64_t>((dr < 0 ? -dr : dr) +
                                          (dg < 0 ? -dg : dg) +
                                          (db < 0 ? -db : db));
    }
    sum += chunk;
    if (sum > bound) return sum;
  }
  return sum;
}

void ThresholdGE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(in[i] >= threshold);
  }
}

void ThresholdLE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(in[i] <= threshold);
  }
}

void SplitRgb(std::span<const Rgb8> px, std::span<float> r, std::span<float> g,
              std::span<float> b) {
  assert(px.size() == r.size() && px.size() == g.size() &&
         px.size() == b.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    r[i] = px[i].r;
    g[i] = px[i].g;
    b[i] = px[i].b;
  }
}

void MergeRgb(std::span<const float> r, std::span<const float> g,
              std::span<const float> b, std::span<Rgb8> px) {
  assert(px.size() == r.size() && px.size() == g.size() &&
         px.size() == b.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = {ClampChannelU8(r[i]), ClampChannelU8(g[i]), ClampChannelU8(b[i])};
  }
}

void RgbToHsvSpan(std::span<const Rgb8> px, std::span<Hsv> out) {
  assert(px.size() == out.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    out[i] = RgbToHsv(px[i]);
  }
}

std::uint64_t ColorBucketHistogram(std::span<const Rgb8> px,
                                   std::span<const std::uint8_t> m,
                                   std::span<std::uint64_t> counts) {
  assert(px.size() == m.size());
  assert(counts.size() == static_cast<std::size_t>(kColorBucketCount));
  // Histogram updates are a scatter, so the win here is only the branchless
  // gate: count every pixel into either its bucket or a discard slot.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    const unsigned keep = m[i] != 0;
    counts[static_cast<std::size_t>(ColorBucket(px[i]))] += keep;
    total += keep;
  }
  return total;
}

std::uint64_t HueHistogramAccum(std::span<const Rgb8> px,
                                std::span<const std::uint8_t> m,
                                float min_saturation, float min_value,
                                std::span<std::uint64_t> bins) {
  assert(px.size() == m.size() && !bins.empty());
  std::uint64_t total = 0;
  const float nbins = static_cast<float>(bins.size());
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (!m[i]) continue;
    const Hsv hsv = RgbToHsv(px[i]);
    if (hsv.s < min_saturation || hsv.v < min_value) continue;
    int bin = static_cast<int>(std::floor(hsv.h / 360.0f * nbins));
    if (bin < 0) bin = 0;
    if (bin >= static_cast<int>(bins.size())) {
      bin = static_cast<int>(bins.size()) - 1;
    }
    ++bins[static_cast<std::size_t>(bin)];
    ++total;
  }
  return total;
}

std::uint64_t MaskedSumRgb(std::span<const Rgb8> px,
                           std::span<const std::uint8_t> m, std::uint64_t* r,
                           std::uint64_t* g, std::uint64_t* b) {
  assert(px.size() == m.size());
  std::uint64_t sr = 0, sg = 0, sb = 0, n = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    const std::uint64_t keep = m[i] != 0;
    sr += keep * px[i].r;
    sg += keep * px[i].g;
    sb += keep * px[i].b;
    n += keep;
  }
  *r = sr;
  *g = sg;
  *b = sb;
  return n;
}

std::size_t MaskedAccumulateRgb(std::span<const Rgb8> frame,
                                std::span<const std::uint8_t> lb,
                                std::span<int> counts, std::span<double> sum_r,
                                std::span<double> sum_g,
                                std::span<double> sum_b,
                                std::span<double> sum_r2,
                                std::span<double> sum_g2,
                                std::span<double> sum_b2) {
  assert(frame.size() == lb.size() && frame.size() == counts.size());
  // Branchless masked adds: the added term is 0 where lb is clear, and
  // adding 0.0 to these integer-valued sums is exact, so the result is
  // bit-identical to the scalar skip-loop.
  std::size_t leaked = 0;
  for (std::size_t p = 0; p < lb.size(); ++p) {
    const int keep = lb[p] != 0;
    const double keepd = static_cast<double>(keep);
    leaked += static_cast<std::size_t>(keep);
    counts[p] += keep;
    sum_r[p] += keepd * frame[p].r;
    sum_g[p] += keepd * frame[p].g;
    sum_b[p] += keepd * frame[p].b;
    sum_r2[p] += keepd * frame[p].r * frame[p].r;
    sum_g2[p] += keepd * frame[p].g * frame[p].g;
    sum_b2[p] += keepd * frame[p].b * frame[p].b;
  }
  return leaked;
}

WindowScore MatchHsvBounded(std::span<const Hsv> tmpl,
                            std::span<const std::int32_t> xs,
                            std::span<const std::int32_t> ys,
                            std::span<const Hsv> grid, std::int32_t gw,
                            std::int32_t gh, std::span<const std::uint8_t> cov,
                            std::int32_t dx, std::int32_t dy,
                            const HsvMatchParams& p, std::int64_t best_matched,
                            std::int64_t best_compared, bool tie_wins,
                            std::int32_t min_compared) {
  assert(tmpl.size() == xs.size() && tmpl.size() == ys.size());
  assert(grid.size() ==
         static_cast<std::size_t>(gw) * static_cast<std::size_t>(gh));
  assert(cov.empty() || cov.size() == grid.size());
  constexpr std::size_t kChunk = 64;  // must match the scalar reference
  WindowScore ws;
  const std::size_t n = tmpl.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t end = std::min(n, base + kChunk);
    std::int32_t chunk_matched = 0, chunk_compared = 0;
    for (std::size_t k = base; k < end; ++k) {
      const std::int32_t x = xs[k] + dx;
      const std::int32_t y = ys[k] + dy;
      const unsigned in_bounds = static_cast<unsigned>(
          (x >= 0) & (y >= 0) & (x < gw) & (y < gh));
      // Clamp the index so out-of-bounds lanes read a harmless pixel; their
      // contribution is zeroed by the predicate.
      const std::size_t idx =
          in_bounds ? static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(gw) +
                          static_cast<std::size_t>(x)
                    : 0;
      const unsigned eligible =
          in_bounds & (cov.empty() ? 1u : static_cast<unsigned>(cov[idx] != 0));
      chunk_compared += static_cast<std::int32_t>(eligible);
      chunk_matched += static_cast<std::int32_t>(
          eligible &
          static_cast<unsigned>(HsvPixelsMatch(tmpl[k], grid[idx], p)));
    }
    ws.matched += chunk_matched;
    ws.compared += chunk_compared;
    if (end == n) break;
    const std::int64_t remaining = static_cast<std::int64_t>(n - end);
    const std::int64_t ub_m = ws.matched + remaining;
    const std::int64_t ub_c = ws.compared + remaining;
    const bool can_reach_min = ub_c >= min_compared;
    const bool can_beat =
        best_compared == 0 ||
        (tie_wins ? ub_m * best_compared >= best_matched * ub_c
                  : ub_m * best_compared > best_matched * ub_c);
    if (!can_reach_min || !can_beat) {
      ws.abandoned = true;
      return ws;
    }
  }
  return ws;
}

}  // namespace bb::imaging::kernels::vec
