// Runtime dispatch for the kernel catalog.
//
// BB_KERNEL=scalar|vector is resolved once per process (default vector);
// SetDispatchForTest overrides it for tests and benches. Every top-level
// bb::imaging::kernels::* entry point forwards to the scalar or vec
// implementation — both are bit-identical, so the switch only affects speed.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "imaging/kernels/kernels.h"

namespace bb::imaging::kernels {

namespace {

Dispatch FromEnv() {
  const char* env = std::getenv("BB_KERNEL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return Dispatch::kScalar;
  }
  return Dispatch::kVector;
}

std::atomic<Dispatch>& ActiveSlot() {
  static std::atomic<Dispatch> slot{FromEnv()};
  return slot;
}

}  // namespace

Dispatch Active() { return ActiveSlot().load(std::memory_order_relaxed); }

void SetDispatchForTest(Dispatch d) {
  ActiveSlot().store(d, std::memory_order_relaxed);
}

const char* ToString(Dispatch d) {
  return d == Dispatch::kScalar ? "scalar" : "vector";
}

inline namespace api {

// Forward every entry point to the active implementation. The argument lists
// mirror the catalog exactly; keep this file free of any logic beyond the
// ternary.
#define BB_DISPATCH(call) \
  (Active() == Dispatch::kVector ? vec::call : scalar::call)

void MaskAnd(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  BB_DISPATCH(MaskAnd(a, b, out));
}

void MaskOr(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
            std::span<std::uint8_t> out) {
  BB_DISPATCH(MaskOr(a, b, out));
}

void MaskAndNot(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::span<std::uint8_t> out) {
  BB_DISPATCH(MaskAndNot(a, b, out));
}

void MaskNot(std::span<const std::uint8_t> a, std::span<std::uint8_t> out) {
  BB_DISPATCH(MaskNot(a, out));
}

void MaskNor(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
             std::span<std::uint8_t> out) {
  BB_DISPATCH(MaskNor(a, b, out));
}

std::size_t CountSet(std::span<const std::uint8_t> m) {
  return BB_DISPATCH(CountSet(m));
}

void CountAndOr(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b, std::uint64_t* inter,
                std::uint64_t* uni) {
  BB_DISPATCH(CountAndOr(a, b, inter, uni));
}

void CountMaskedPair(std::span<const std::uint8_t> region,
                     std::span<const std::uint8_t> m, std::uint64_t* total,
                     std::uint64_t* masked) {
  BB_DISPATCH(CountMaskedPair(region, m, total, masked));
}

void SelectRgb(std::span<const std::uint8_t> m, std::span<const Rgb8> a,
               std::span<const Rgb8> b, std::span<Rgb8> out) {
  BB_DISPATCH(SelectRgb(m, a, b, out));
}

void MaskToFloat(std::span<const std::uint8_t> m, std::span<float> out) {
  BB_DISPATCH(MaskToFloat(m, out));
}

void LerpRgb(std::span<const Rgb8> a, std::span<const Rgb8> b,
             std::span<const float> alpha, std::span<Rgb8> out) {
  BB_DISPATCH(LerpRgb(a, b, alpha, out));
}

void AddSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  BB_DISPATCH(AddSaturate(a, b, out));
}

void SubSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,
                 std::span<Rgb8> out) {
  BB_DISPATCH(SubSaturate(a, b, out));
}

void MatchMask(std::span<const Rgb8> frame, std::span<const Rgb8> ref,
               std::span<const std::uint8_t> valid, int tolerance,
               std::span<std::uint8_t> out) {
  BB_DISPATCH(MatchMask(frame, ref, valid, tolerance, out));
}

std::size_t MatchCountStrided(std::span<const Rgb8> a, std::span<const Rgb8> b,
                              int tolerance, std::size_t stride) {
  return BB_DISPATCH(MatchCountStrided(a, b, tolerance, stride));
}

void ChangedUnion(std::span<const Rgb8> a, std::span<const Rgb8> b,
                  int tolerance, std::span<std::uint8_t> accum) {
  BB_DISPATCH(ChangedUnion(a, b, tolerance, accum));
}

void CountClaimedVerified(std::span<const std::uint8_t> cov,
                          std::span<const Rgb8> recon,
                          std::span<const Rgb8> truth, int tolerance,
                          std::uint64_t* claimed, std::uint64_t* verified) {
  BB_DISPATCH(CountClaimedVerified(cov, recon, truth, tolerance, claimed,
                                   verified));
}

void AbsDiffMax(std::span<const Rgb8> a, std::span<const Rgb8> b,
                std::span<float> out) {
  BB_DISPATCH(AbsDiffMax(a, b, out));
}

std::uint64_t SadRgb(std::span<const Rgb8> a, std::span<const Rgb8> b) {
  return BB_DISPATCH(SadRgb(a, b));
}

std::uint64_t SadRgbBounded(std::span<const Rgb8> a, std::span<const Rgb8> b,
                            std::uint64_t bound) {
  return BB_DISPATCH(SadRgbBounded(a, b, bound));
}

void ThresholdGE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  BB_DISPATCH(ThresholdGE(in, threshold, out));
}

void ThresholdLE(std::span<const float> in, float threshold,
                 std::span<std::uint8_t> out) {
  BB_DISPATCH(ThresholdLE(in, threshold, out));
}

void SplitRgb(std::span<const Rgb8> px, std::span<float> r, std::span<float> g,
              std::span<float> b) {
  BB_DISPATCH(SplitRgb(px, r, g, b));
}

void MergeRgb(std::span<const float> r, std::span<const float> g,
              std::span<const float> b, std::span<Rgb8> px) {
  BB_DISPATCH(MergeRgb(r, g, b, px));
}

void RgbToHsvSpan(std::span<const Rgb8> px, std::span<Hsv> out) {
  BB_DISPATCH(RgbToHsvSpan(px, out));
}

std::uint64_t ColorBucketHistogram(std::span<const Rgb8> px,
                                   std::span<const std::uint8_t> m,
                                   std::span<std::uint64_t> counts) {
  return BB_DISPATCH(ColorBucketHistogram(px, m, counts));
}

std::uint64_t HueHistogramAccum(std::span<const Rgb8> px,
                                std::span<const std::uint8_t> m,
                                float min_saturation, float min_value,
                                std::span<std::uint64_t> bins) {
  return BB_DISPATCH(HueHistogramAccum(px, m, min_saturation, min_value, bins));
}

std::uint64_t MaskedSumRgb(std::span<const Rgb8> px,
                           std::span<const std::uint8_t> m, std::uint64_t* r,
                           std::uint64_t* g, std::uint64_t* b) {
  return BB_DISPATCH(MaskedSumRgb(px, m, r, g, b));
}

std::size_t MaskedAccumulateRgb(std::span<const Rgb8> frame,
                                std::span<const std::uint8_t> lb,
                                std::span<int> counts, std::span<double> sum_r,
                                std::span<double> sum_g,
                                std::span<double> sum_b,
                                std::span<double> sum_r2,
                                std::span<double> sum_g2,
                                std::span<double> sum_b2) {
  return BB_DISPATCH(MaskedAccumulateRgb(frame, lb, counts, sum_r, sum_g,
                                         sum_b, sum_r2, sum_g2, sum_b2));
}

WindowScore MatchHsvBounded(std::span<const Hsv> tmpl,
                            std::span<const std::int32_t> xs,
                            std::span<const std::int32_t> ys,
                            std::span<const Hsv> grid, std::int32_t gw,
                            std::int32_t gh, std::span<const std::uint8_t> cov,
                            std::int32_t dx, std::int32_t dy,
                            const HsvMatchParams& p, std::int64_t best_matched,
                            std::int64_t best_compared, bool tie_wins,
                            std::int32_t min_compared) {
  return BB_DISPATCH(MatchHsvBounded(tmpl, xs, ys, grid, gw, gh, cov, dx, dy,
                                     p, best_matched, best_compared, tie_wins,
                                     min_compared));
}

#undef BB_DISPATCH

}  // inline namespace api

}  // namespace bb::imaging::kernels
