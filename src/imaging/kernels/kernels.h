// Span-based per-pixel kernel catalog (DESIGN.md section 15).
//
// Every per-pixel hot loop in the tree lives here, exactly once, in two
// implementations:
//   kernels::scalar::*  - the reference: the simplest possible loop.
//   kernels::vec::*     - autovectorization-friendly: branchless selects,
//                         fixed-size chunking, no data-dependent early
//                         exits inside a chunk.
// The two are BIT-IDENTICAL by construction: every primitive is either pure
// integer arithmetic or applies the same per-element float operations in
// the same per-element order (no float accumulation is ever reassociated;
// the only float sums, in MaskedAccumulateRgb, add integer-valued terms and
// are exact in any order). The top-level bb::imaging::kernels::* entry
// points dispatch on Dispatch::Active(), resolved once from the BB_KERNEL
// environment variable (scalar|vector; default vector) or overridden
// programmatically for tests and benches.
//
// Kernels never allocate and never touch trace/timing state; callers own
// buffers, strides, and counters. Offsets into row-major grids are plain
// span indices so the no-raw-pixel-indexing rule stays meaningful above
// this layer.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "imaging/kernels/pixel.h"

namespace bb::imaging::kernels {

// ---- Runtime dispatch ----------------------------------------------------

enum class Dispatch { kScalar, kVector };

// Resolved once per process from BB_KERNEL (scalar|vector, default vector)
// unless overridden. Both implementations are bit-identical, so the switch
// can never change results - only speed.
Dispatch Active();

// Test/bench override; pass-through to all subsequent top-level calls.
void SetDispatchForTest(Dispatch d);

const char* ToString(Dispatch d);

// ---- Shared parameter/result types ---------------------------------------

// HSV matching tolerances (paper sec. VI): near-gray pixels (s below
// min_saturation) match on value, saturated pixels match on hue.
struct HsvMatchParams {
  float min_saturation = 0.15f;
  float hue_tolerance = 20.0f;
  float value_tolerance = 0.22f;
};

// The shared per-element predicate: near-gray pixels only ever match other
// near-gray pixels (on value); colored pixels match on hue. Both kernel
// implementations call exactly this function so the float comparisons are
// identical per element.
inline bool HsvPixelsMatch(const Hsv& a, const Hsv& b,
                           const HsvMatchParams& p) {
  const bool a_gray = a.s < p.min_saturation;
  const bool b_gray = b.s < p.min_saturation;
  if (a_gray != b_gray) return false;
  if (a_gray) return std::fabs(a.v - b.v) <= p.value_tolerance;
  return HueDistance(a.h, b.h) <= p.hue_tolerance;
}

// Integer window score: matched / compared sample counts. Fractions are
// compared exactly by int64 cross-multiplication (counts are bounded by the
// sample count, so products never overflow). `abandoned` is set when the
// early-abandon bound proved the window cannot beat the incumbent.
struct WindowScore {
  std::int32_t matched = 0;
  std::int32_t compared = 0;
  bool abandoned = false;
};

// ---- Catalog -------------------------------------------------------------
//
// Masks are 0/1 bytes (kMaskSet/kMaskClear); a non-zero byte counts as set.
// All span arguments of one call must have equal lengths unless noted.

#define BB_KERNEL_CATALOG(NS_INTRO)                                           \
  NS_INTRO {                                                                  \
  /* Boolean mask combinators. */                                             \
  void MaskAnd(std::span<const std::uint8_t> a,                               \
               std::span<const std::uint8_t> b, std::span<std::uint8_t> out); \
  void MaskOr(std::span<const std::uint8_t> a,                                \
              std::span<const std::uint8_t> b, std::span<std::uint8_t> out);  \
  void MaskAndNot(std::span<const std::uint8_t> a,                            \
                  std::span<const std::uint8_t> b,                            \
                  std::span<std::uint8_t> out);                               \
  void MaskNot(std::span<const std::uint8_t> a,                               \
               std::span<std::uint8_t> out);                                  \
  /* out = !a && !b (the leaked-background residue mask). */                  \
  void MaskNor(std::span<const std::uint8_t> a,                               \
               std::span<const std::uint8_t> b, std::span<std::uint8_t> out); \
  std::size_t CountSet(std::span<const std::uint8_t> m);                      \
  /* Intersection and union counts in one pass (IoU). */                      \
  void CountAndOr(std::span<const std::uint8_t> a,                            \
                  std::span<const std::uint8_t> b, std::uint64_t* inter,      \
                  std::uint64_t* uni);                                        \
  /* total = set pixels of `region`; masked = those also set in `m`. */       \
  void CountMaskedPair(std::span<const std::uint8_t> region,                  \
                       std::span<const std::uint8_t> m, std::uint64_t* total, \
                       std::uint64_t* masked);                                \
  /* Hard composite: out = m ? a : b. */                                      \
  void SelectRgb(std::span<const std::uint8_t> m, std::span<const Rgb8> a,    \
                 std::span<const Rgb8> b, std::span<Rgb8> out);               \
  /* Mask to 1.0f/0.0f alpha plane. */                                        \
  void MaskToFloat(std::span<const std::uint8_t> m, std::span<float> out);    \
  /* out = Lerp(a, b, alpha) per pixel (feathered composite). */              \
  void LerpRgb(std::span<const Rgb8> a, std::span<const Rgb8> b,              \
               std::span<const float> alpha, std::span<Rgb8> out);            \
  /* Saturating 8-bit add/sub, channel-wise. */                               \
  void AddSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,          \
                   std::span<Rgb8> out);                                      \
  void SubSaturate(std::span<const Rgb8> a, std::span<const Rgb8> b,          \
                   std::span<Rgb8> out);                                      \
  /* Tolerance match mask: out = (valid ? NearlyEqual : 0); empty `valid`     \
     means every pixel is eligible (VBM computation, phi calibration). */     \
  void MatchMask(std::span<const Rgb8> frame, std::span<const Rgb8> ref,      \
                 std::span<const std::uint8_t> valid, int tolerance,          \
                 std::span<std::uint8_t> out);                                \
  /* Count of NearlyEqual pixels visiting every stride-th element. */         \
  std::size_t MatchCountStrided(std::span<const Rgb8> a,                      \
                                std::span<const Rgb8> b, int tolerance,       \
                                std::size_t stride);                          \
  /* OR-accumulates set bits where the frames differ (displacement). */       \
  void ChangedUnion(std::span<const Rgb8> a, std::span<const Rgb8> b,         \
                    int tolerance, std::span<std::uint8_t> accum);            \
  /* claimed = covered pixels; verified = covered and NearlyEqual truth. */   \
  void CountClaimedVerified(std::span<const std::uint8_t> cov,                \
                            std::span<const Rgb8> recon,                      \
                            std::span<const Rgb8> truth, int tolerance,       \
                            std::uint64_t* claimed, std::uint64_t* verified); \
  /* Max-channel absolute difference as a float plane. */                     \
  void AbsDiffMax(std::span<const Rgb8> a, std::span<const Rgb8> b,           \
                  std::span<float> out);                                      \
  /* Sum of |dr|+|dg|+|db| over the spans (SAD). */                           \
  std::uint64_t SadRgb(std::span<const Rgb8> a, std::span<const Rgb8> b);     \
  /* SAD with an early-abandon bound: once the partial sum exceeds `bound`    \
     at a chunk boundary the partial sum is returned (it is > bound, which    \
     is all a pruning caller needs; chunking is identical in both            \
     implementations so even abandoned results are bit-identical). */         \
  std::uint64_t SadRgbBounded(std::span<const Rgb8> a,                        \
                              std::span<const Rgb8> b, std::uint64_t bound);  \
  void ThresholdGE(std::span<const float> in, float threshold,                \
                   std::span<std::uint8_t> out);                              \
  void ThresholdLE(std::span<const float> in, float threshold,                \
                   std::span<std::uint8_t> out);                              \
  void SplitRgb(std::span<const Rgb8> px, std::span<float> r,                 \
                std::span<float> g, std::span<float> b);                      \
  void MergeRgb(std::span<const float> r, std::span<const float> g,           \
                std::span<const float> b, std::span<Rgb8> px);                \
  void RgbToHsvSpan(std::span<const Rgb8> px, std::span<Hsv> out);            \
  /* 4096-bucket channel histogram over masked pixels; returns the number     \
     of counted pixels. `counts` must have kColorBucketCount entries. */      \
  std::uint64_t ColorBucketHistogram(std::span<const Rgb8> px,                \
                                     std::span<const std::uint8_t> m,         \
                                     std::span<std::uint64_t> counts);        \
  /* Hue histogram accumulation over masked, sufficiently colorful pixels;    \
     returns the number of binned pixels. */                                  \
  std::uint64_t HueHistogramAccum(std::span<const Rgb8> px,                   \
                                  std::span<const std::uint8_t> m,            \
                                  float min_saturation, float min_value,      \
                                  std::span<std::uint64_t> bins);             \
  /* Channel sums over masked pixels; returns the masked count. */            \
  std::uint64_t MaskedSumRgb(std::span<const Rgb8> px,                        \
                             std::span<const std::uint8_t> m,                 \
                             std::uint64_t* r, std::uint64_t* g,              \
                             std::uint64_t* b);                               \
  /* Leak accumulation (streaming reconstruction): where `lb` is set, bump    \
     counts and the six channel sums. The sums are integer-valued doubles     \
     (uint8 samples and their squares), so accumulation is exact. Returns     \
     the number of leaked pixels. */                                          \
  std::size_t MaskedAccumulateRgb(                                            \
      std::span<const Rgb8> frame, std::span<const std::uint8_t> lb,          \
      std::span<int> counts, std::span<double> sum_r,                         \
      std::span<double> sum_g, std::span<double> sum_b,                       \
      std::span<double> sum_r2, std::span<double> sum_g2,                     \
      std::span<double> sum_b2);                                              \
  /* Bounded HSV sample match: template sample k (hsv tmpl[k] at              \
     (xs[k], ys[k])) is compared against grid pixel (xs[k]+dx, ys[k]+dy)      \
     when that lands in the gw x gh grid and - if `cov` is non-empty - its    \
     coverage byte is set. Early-abandons at a 64-sample chunk boundary as    \
     soon as the optimistic completion (matched + remaining) /                \
     (compared + remaining) can no longer beat the incumbent                  \
     best_matched / best_compared (strictly, or by tie when `tie_wins`) or    \
     can no longer reach min_compared. Chunking is identical in both          \
     implementations, so abandoned scores are bit-identical too. */           \
  WindowScore MatchHsvBounded(                                                \
      std::span<const Hsv> tmpl, std::span<const std::int32_t> xs,            \
      std::span<const std::int32_t> ys, std::span<const Hsv> grid,            \
      std::int32_t gw, std::int32_t gh, std::span<const std::uint8_t> cov,    \
      std::int32_t dx, std::int32_t dy, const HsvMatchParams& p,              \
      std::int64_t best_matched, std::int64_t best_compared, bool tie_wins,   \
      std::int32_t min_compared);                                             \
  }

BB_KERNEL_CATALOG(namespace scalar)
BB_KERNEL_CATALOG(namespace vec)
// The dispatching entry points call scalar::* or vec::* per Active().
BB_KERNEL_CATALOG(inline namespace api)

#undef BB_KERNEL_CATALOG

// Exact comparison of two match fractions m1/c1 vs m2/c2 (c >= 0) without
// division: the search layers use this for incumbent updates so pruned and
// exhaustive sweeps pick the same winner bit-for-bit. Empty scores (c == 0)
// lose to everything non-empty.
inline bool FractionGreater(std::int64_t m1, std::int64_t c1, std::int64_t m2,
                            std::int64_t c2) {
  if (c1 == 0) return false;
  if (c2 == 0) return true;
  return m1 * c2 > m2 * c1;
}
inline bool FractionEqual(std::int64_t m1, std::int64_t c1, std::int64_t m2,
                          std::int64_t c2) {
  if (c1 == 0 || c2 == 0) return c1 == c2;
  return m1 * c2 == m2 * c1;
}

}  // namespace bb::imaging::kernels
