// Rasterization primitives used by the synthetic scene generator.
//
// All routines clip against the image bounds, so callers may draw shapes
// that extend past the frame (e.g. a caller walking out of the room in the
// exit/enter action).
#pragma once

#include "imaging/geometry.h"
#include "imaging/image.h"

namespace bb::imaging {

void FillRect(Image& img, const Rect& r, Rgb8 color);
void DrawRectOutline(Image& img, const Rect& r, Rgb8 color, int thickness = 1);

void FillCircle(Image& img, int cx, int cy, int radius, Rgb8 color);
void FillEllipse(Image& img, int cx, int cy, int rx, int ry, Rgb8 color);

// Thick line with round caps ("capsule") - used for limbs of the synthetic
// caller.
void FillCapsule(Image& img, PointF a, PointF b, double radius, Rgb8 color);

void DrawLine(Image& img, Point a, Point b, Rgb8 color, int thickness = 1);

// Ring (circle outline with inner/outer radius), used for clock faces and
// headphone bands.
void FillRing(Image& img, int cx, int cy, int r_outer, int r_inner,
              Rgb8 color);

// Same primitives on bitmaps (used to build ground-truth caller masks).
void FillRect(Bitmap& mask, const Rect& r, std::uint8_t value = kMaskSet);
void FillCircle(Bitmap& mask, int cx, int cy, int radius,
                std::uint8_t value = kMaskSet);
void FillEllipse(Bitmap& mask, int cx, int cy, int rx, int ry,
                 std::uint8_t value = kMaskSet);
void FillCapsule(Bitmap& mask, PointF a, PointF b, double radius,
                 std::uint8_t value = kMaskSet);

// Copies `src` pixels into `dst` wherever `where` is set.
void CopyMasked(Image& dst, const Image& src, const Bitmap& where);

// Paints `color` into `dst` wherever `where` is set.
void PaintMasked(Image& dst, const Bitmap& where, Rgb8 color);

}  // namespace bb::imaging
