// Binary morphology on masks.
//
// The blending-blur mask BBM (paper sec. V-C) is exactly a disc dilation of
// the virtual-background mask by radius phi; the matting-error model also
// uses dilation/erosion to fatten or thin the estimated caller mask. Disc
// operations are implemented via an exact Euclidean distance transform so
// they stay O(n) regardless of radius.
#pragma once

#include "imaging/image.h"

namespace bb::imaging {

// Exact squared Euclidean distance from each pixel to the nearest SET pixel
// of `mask` (Felzenszwalb-Huttenlocher two-pass algorithm). Pixels inside
// the set have distance 0. If the mask is entirely clear, all distances are
// a large sentinel (> width*height squared).
FloatImage SquaredDistanceToSet(const Bitmap& mask);

// Disc dilation: every pixel within Euclidean distance `radius` of a set
// pixel becomes set.
Bitmap DilateDisc(const Bitmap& mask, double radius);

// Disc erosion: a pixel stays set only if every pixel within `radius` is
// set (equivalently, its distance to the complement exceeds radius).
Bitmap ErodeDisc(const Bitmap& mask, double radius);

// Morphological open (erode then dilate) and close (dilate then erode).
Bitmap OpenDisc(const Bitmap& mask, double radius);
Bitmap CloseDisc(const Bitmap& mask, double radius);

// The set of pixels within `radius` of the mask but not in the mask itself -
// the "ring" used for the blending region.
Bitmap BoundaryRing(const Bitmap& mask, double radius);

}  // namespace bb::imaging
