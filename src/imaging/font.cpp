#include "imaging/font.h"

#include <array>
#include <cctype>

namespace bb::imaging {

namespace {

struct Glyph {
  char c;
  std::uint8_t rows[kGlyphHeight];
};

// Classic 5x7 dot-matrix font; bit 4 is the leftmost column of a row.
constexpr std::array<Glyph, 42> kGlyphs = {{
    {'A', {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001}},
    {'B', {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110}},
    {'C', {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110}},
    {'D', {0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110}},
    {'E', {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111}},
    {'F', {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000}},
    {'G', {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111}},
    {'H', {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001}},
    {'I', {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}},
    {'J', {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100}},
    {'K', {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001}},
    {'L', {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111}},
    {'M', {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001}},
    {'N', {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001}},
    {'O', {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110}},
    {'P', {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000}},
    {'Q', {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101}},
    {'R', {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001}},
    {'S', {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110}},
    {'T', {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100}},
    {'U', {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110}},
    {'V', {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100}},
    {'W', {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010}},
    {'X', {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001}},
    {'Y', {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100}},
    {'Z', {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111}},
    {'0', {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}},
    {'1', {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}},
    {'2', {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111}},
    {'3', {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110}},
    {'4', {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}},
    {'5', {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}},
    {'6', {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}},
    {'7', {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}},
    {'8', {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}},
    {'9', {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}},
    {' ', {0, 0, 0, 0, 0, 0, 0}},
    {'.', {0, 0, 0, 0, 0, 0b00100, 0b00100}},
    {'-', {0, 0, 0, 0b01110, 0, 0, 0}},
    {'!', {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0, 0b00100}},
    {'?', {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100}},
    {':', {0, 0b00100, 0b00100, 0, 0b00100, 0b00100, 0}},
}};

}  // namespace

std::optional<const std::uint8_t*> GlyphRows(char c) {
  const char upper = static_cast<char>(
      std::toupper(static_cast<unsigned char>(c)));
  for (const Glyph& g : kGlyphs) {
    if (g.c == upper) return g.rows;
  }
  return std::nullopt;
}

bool IsRenderable(char c) { return GlyphRows(c).has_value(); }

Rect DrawText(Image& img, int x, int y, int scale, Rgb8 color,
              std::string_view text) {
  if (scale < 1) scale = 1;
  const int advance = (kGlyphWidth + 1) * scale;
  int cx = x;
  for (char c : text) {
    if (auto rows = GlyphRows(c)) {
      for (int gy = 0; gy < kGlyphHeight; ++gy) {
        const std::uint8_t bits = (*rows)[gy];
        for (int gx = 0; gx < kGlyphWidth; ++gx) {
          if (!(bits & (1 << (kGlyphWidth - 1 - gx)))) continue;
          for (int sy = 0; sy < scale; ++sy) {
            for (int sx = 0; sx < scale; ++sx) {
              const int px = cx + gx * scale + sx;
              const int py = y + gy * scale + sy;
              if (img.InBounds(px, py)) img(px, py) = color;
            }
          }
        }
      }
    }
    cx += advance;
  }
  return Rect{x, y, TextWidth(text, scale), kGlyphHeight * scale};
}

int TextWidth(std::string_view text, int scale) {
  if (scale < 1) scale = 1;
  if (text.empty()) return 0;
  const int advance = (kGlyphWidth + 1) * scale;
  return static_cast<int>(text.size()) * advance - scale;
}

Bitmap GlyphBitmap(char c) {
  auto rows = GlyphRows(c);
  if (!rows) return {};
  Bitmap out(kGlyphWidth, kGlyphHeight);
  for (int gy = 0; gy < kGlyphHeight; ++gy) {
    for (int gx = 0; gx < kGlyphWidth; ++gx) {
      if ((*rows)[gy] & (1 << (kGlyphWidth - 1 - gx))) {
        out(gx, gy) = kMaskSet;
      }
    }
  }
  return out;
}

}  // namespace bb::imaging
