#include "imaging/histogram.h"

#include <algorithm>
#include <cmath>

namespace bb::imaging {

void ColorFrequency::AddMasked(const Image& img, const Bitmap& mask) {
  RequireSameShape(img, mask, "ColorFrequency::AddMasked");
  auto pi = img.pixels();
  auto pm = mask.pixels();
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pm[i]) Add(pi[i]);
  }
}

std::vector<double> HueHistogram(const Image& img, const Bitmap& mask,
                                 const HueHistogramOptions& opts) {
  RequireSameShape(img, mask, "HueHistogram");
  std::vector<double> hist(static_cast<std::size_t>(std::max(1, opts.bins)),
                           0.0);
  auto pi = img.pixels();
  auto pm = mask.pixels();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (!pm[i]) continue;
    const Hsv hsv = RgbToHsv(pi[i]);
    if (hsv.s < opts.min_saturation || hsv.v < opts.min_value) continue;
    // Hue binning wants the floor, not the nearest bin.
    int bin = static_cast<int>(
        std::floor(hsv.h / 360.0f * static_cast<float>(hist.size())));
    bin = std::clamp(bin, 0, static_cast<int>(hist.size()) - 1);
    hist[static_cast<std::size_t>(bin)] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (auto& v : hist) v /= total;
  }
  return hist;
}

double HistogramIntersection(const std::vector<double>& a,
                             const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::min(a[i], b[i]);
  return sum;
}

Rgb8 MeanColor(const Image& img, const Bitmap& mask) {
  RequireSameShape(img, mask, "MeanColor");
  double r = 0, g = 0, b = 0, n = 0;
  auto pi = img.pixels();
  auto pm = mask.pixels();
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (!pm[i]) continue;
    r += pi[i].r;
    g += pi[i].g;
    b += pi[i].b;
    n += 1.0;
  }
  if (n == 0.0) return {};
  return {static_cast<std::uint8_t>(r / n + 0.5),
          static_cast<std::uint8_t>(g / n + 0.5),
          static_cast<std::uint8_t>(b / n + 0.5)};
}

}  // namespace bb::imaging
