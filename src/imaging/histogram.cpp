#include "imaging/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "imaging/kernels/kernels.h"

namespace bb::imaging {

void ColorFrequency::AddMasked(const Image& img, const Bitmap& mask) {
  RequireSameShape(img, mask, "ColorFrequency::AddMasked");
  total_ += kernels::ColorBucketHistogram(img.pixels(), mask.pixels(),
                                          counts_);
}

std::vector<double> HueHistogram(const Image& img, const Bitmap& mask,
                                 const HueHistogramOptions& opts) {
  RequireSameShape(img, mask, "HueHistogram");
  std::vector<std::uint64_t> bins(
      static_cast<std::size_t>(std::max(1, opts.bins)), 0);
  const std::uint64_t total = kernels::HueHistogramAccum(
      img.pixels(), mask.pixels(), opts.min_saturation, opts.min_value, bins);
  std::vector<double> hist(bins.size(), 0.0);
  if (total > 0) {
    for (std::size_t i = 0; i < bins.size(); ++i) {
      hist[i] = static_cast<double>(bins[i]) / static_cast<double>(total);
    }
  }
  return hist;
}

double HistogramIntersection(const std::vector<double>& a,
                             const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::min(a[i], b[i]);
  return sum;
}

Rgb8 MeanColor(const Image& img, const Bitmap& mask) {
  RequireSameShape(img, mask, "MeanColor");
  std::uint64_t r = 0, g = 0, b = 0;
  const std::uint64_t n =
      kernels::MaskedSumRgb(img.pixels(), mask.pixels(), &r, &g, &b);
  if (n == 0) return {};
  const double dn = static_cast<double>(n);
  return {static_cast<std::uint8_t>(static_cast<double>(r) / dn + 0.5),
          static_cast<std::uint8_t>(static_cast<double>(g) / dn + 0.5),
          static_cast<std::uint8_t>(static_cast<double>(b) / dn + 0.5)};
}

}  // namespace bb::imaging
