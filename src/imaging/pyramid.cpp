#include "imaging/pyramid.h"

#include <algorithm>
#include <cmath>

namespace bb::imaging {

namespace {

// 1-4-6-4-1 separable smoothing on a band image (edge-clamped).
BandImage Smooth(const BandImage& img) {
  static constexpr float kK[5] = {1.0f / 16, 4.0f / 16, 6.0f / 16,
                                  4.0f / 16, 1.0f / 16};
  const int w = img.width(), h = img.height();
  BandImage tmp(w, h), out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      Rgbf acc;
      for (int k = -2; k <= 2; ++k) {
        const Rgbf& p = img(std::clamp(x + k, 0, w - 1), y);
        acc.r += kK[k + 2] * p.r;
        acc.g += kK[k + 2] * p.g;
        acc.b += kK[k + 2] * p.b;
      }
      tmp(x, y) = acc;
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      Rgbf acc;
      for (int k = -2; k <= 2; ++k) {
        const Rgbf& p = tmp(x, std::clamp(y + k, 0, h - 1));
        acc.r += kK[k + 2] * p.r;
        acc.g += kK[k + 2] * p.g;
        acc.b += kK[k + 2] * p.b;
      }
      out(x, y) = acc;
    }
  }
  return out;
}

FloatImage DownsampleMask(const FloatImage& mask) {
  const int w = (mask.width() + 1) / 2, h = (mask.height() + 1) / 2;
  FloatImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Mean of the (up to) 2x2 source block.
      float sum = 0.0f;
      int n = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int sx = 2 * x + dx, sy = 2 * y + dy;
          if (sx < mask.width() && sy < mask.height()) {
            sum += mask(sx, sy);
            ++n;
          }
        }
      }
      out(x, y) = n > 0 ? sum / static_cast<float>(n) : 0.0f;
    }
  }
  return out;
}

}  // namespace

BandImage ToBandImage(const Image& img) {
  BandImage out(img.width(), img.height());
  auto pi = img.pixels();
  auto po = out.pixels();
  // bblint: allow(no-per-pixel-loop) -- signed Rgbf band math; outside the u8 kernel catalog element types
  for (std::size_t i = 0; i < pi.size(); ++i) {
    po[i] = {static_cast<float>(pi[i].r), static_cast<float>(pi[i].g),
             static_cast<float>(pi[i].b)};
  }
  return out;
}

Image FromBandImage(const BandImage& img) {
  Image out(img.width(), img.height());
  auto pi = img.pixels();
  auto po = out.pixels();
  auto clamp8 = [](float v) {
    return static_cast<std::uint8_t>(std::clamp(v + 0.5f, 0.0f, 255.0f));
  };
  // bblint: allow(no-per-pixel-loop) -- signed Rgbf band math; outside the u8 kernel catalog element types
  for (std::size_t i = 0; i < pi.size(); ++i) {
    po[i] = {clamp8(pi[i].r), clamp8(pi[i].g), clamp8(pi[i].b)};
  }
  return out;
}

BandImage Downsample2x(const BandImage& img) {
  const BandImage smoothed = Smooth(img);
  const int w = (img.width() + 1) / 2, h = (img.height() + 1) / 2;
  BandImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out(x, y) = smoothed(std::min(2 * x, img.width() - 1),
                           std::min(2 * y, img.height() - 1));
    }
  }
  return out;
}

BandImage UpsampleTo(const BandImage& img, int width, int height) {
  BandImage out(width, height);
  if (img.empty() || width <= 0 || height <= 0) return out;
  const float sx = static_cast<float>(img.width()) / width;
  const float sy = static_cast<float>(img.height()) / height;
  for (int y = 0; y < height; ++y) {
    const float fy =
        std::min((y + 0.5f) * sy - 0.5f,
                 static_cast<float>(img.height() - 1));
    const int y0 = std::max(0, static_cast<int>(std::floor(fy)));
    const int y1 = std::min(img.height() - 1, y0 + 1);
    const float wy = std::clamp(fy - y0, 0.0f, 1.0f);
    for (int x = 0; x < width; ++x) {
      const float fx =
          std::min((x + 0.5f) * sx - 0.5f,
                   static_cast<float>(img.width() - 1));
      const int x0 = std::max(0, static_cast<int>(std::floor(fx)));
      const int x1 = std::min(img.width() - 1, x0 + 1);
      const float wx = std::clamp(fx - x0, 0.0f, 1.0f);
      auto lerp_ch = [&](float c00, float c10, float c01, float c11) {
        const float top = c00 * (1 - wx) + c10 * wx;
        const float bot = c01 * (1 - wx) + c11 * wx;
        return top * (1 - wy) + bot * wy;
      };
      const Rgbf& p00 = img(x0, y0);
      const Rgbf& p10 = img(x1, y0);
      const Rgbf& p01 = img(x0, y1);
      const Rgbf& p11 = img(x1, y1);
      out(x, y) = {lerp_ch(p00.r, p10.r, p01.r, p11.r),
                   lerp_ch(p00.g, p10.g, p01.g, p11.g),
                   lerp_ch(p00.b, p10.b, p01.b, p11.b)};
    }
  }
  return out;
}

std::vector<BandImage> GaussianPyramid(const BandImage& img, int levels) {
  std::vector<BandImage> out;
  out.push_back(img);
  for (int l = 1; l < levels; ++l) {
    const BandImage& prev = out.back();
    if (prev.width() <= 1 || prev.height() <= 1) break;
    out.push_back(Downsample2x(prev));
  }
  return out;
}

std::vector<BandImage> LaplacianPyramid(const BandImage& img, int levels) {
  const std::vector<BandImage> gauss = GaussianPyramid(img, levels);
  std::vector<BandImage> out;
  for (std::size_t l = 0; l + 1 < gauss.size(); ++l) {
    const BandImage up = UpsampleTo(gauss[l + 1], gauss[l].width(),
                                    gauss[l].height());
    BandImage band(gauss[l].width(), gauss[l].height());
    auto pg = gauss[l].pixels();
    auto pu = up.pixels();
    auto pb = band.pixels();
    // bblint: allow(no-per-pixel-loop) -- signed Rgbf band math; outside the u8 kernel catalog element types
    for (std::size_t i = 0; i < pb.size(); ++i) {
      pb[i] = {pg[i].r - pu[i].r, pg[i].g - pu[i].g, pg[i].b - pu[i].b};
    }
    out.push_back(std::move(band));
  }
  out.push_back(gauss.back());  // low-pass residual
  return out;
}

BandImage CollapseLaplacian(const std::vector<BandImage>& pyramid) {
  if (pyramid.empty()) return {};
  BandImage acc = pyramid.back();
  for (std::size_t l = pyramid.size() - 1; l-- > 0;) {
    const BandImage up =
        UpsampleTo(acc, pyramid[l].width(), pyramid[l].height());
    acc = BandImage(pyramid[l].width(), pyramid[l].height());
    auto pb = pyramid[l].pixels();
    auto pu = up.pixels();
    auto pa = acc.pixels();
    // bblint: allow(no-per-pixel-loop) -- signed Rgbf band math; outside the u8 kernel catalog element types
    for (std::size_t i = 0; i < pa.size(); ++i) {
      pa[i] = {pb[i].r + pu[i].r, pb[i].g + pu[i].g, pb[i].b + pu[i].b};
    }
  }
  return acc;
}

Image PyramidBlend(const Image& a, const Image& b, const FloatImage& mask,
                   int levels) {
  RequireSameShape(a, b, "PyramidBlend");
  RequireSameShape(a, mask, "PyramidBlend");
  const auto la = LaplacianPyramid(ToBandImage(a), levels);
  const auto lb = LaplacianPyramid(ToBandImage(b), levels);

  // Mask pyramid: plain downsampled means (already smooth per level).
  std::vector<FloatImage> masks;
  masks.push_back(mask);
  while (masks.size() < la.size()) {
    masks.push_back(DownsampleMask(masks.back()));
  }

  std::vector<BandImage> blended;
  for (std::size_t l = 0; l < la.size(); ++l) {
    BandImage band(la[l].width(), la[l].height());
    auto pa = la[l].pixels();
    auto pb = lb[l].pixels();
    auto pm = masks[l].pixels();
    auto po = band.pixels();
    // bblint: allow(no-per-pixel-loop) -- signed Rgbf band math; outside the u8 kernel catalog element types
    for (std::size_t i = 0; i < po.size(); ++i) {
      const float m = std::clamp(pm[i], 0.0f, 1.0f);
      po[i] = {pa[i].r * m + pb[i].r * (1 - m),
               pa[i].g * m + pb[i].g * (1 - m),
               pa[i].b * m + pb[i].b * (1 - m)};
    }
    blended.push_back(std::move(band));
  }
  return FromBandImage(CollapseLaplacian(blended));
}

}  // namespace bb::imaging
