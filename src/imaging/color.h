// Color-space utilities.
//
// The reconstruction framework and the location-inference attack (paper
// sec. VI) operate on *hue* so that matching is robust to ambient-light
// changes; the dynamic-virtual-background mitigation (sec. IX-A) manipulates
// brightness and saturation. This header provides the RGB <-> HSV machinery
// those components share.
#pragma once

#include <cstdint>

#include "imaging/image.h"
#include "imaging/kernels/pixel.h"

namespace bb::imaging {

// Hsv, RgbToHsv, HueDistance, NearlyEqual, Lerp, ColorBucket and
// kColorBucketCount now live in imaging/kernels/pixel.h (same namespace) so
// the kernel layer can share the exact per-element math. This header keeps
// the conversions only the high-level code needs.

Rgb8 HsvToRgb(const Hsv& c);

// Rec.601 luma in [0, 255].
float Luma(Rgb8 c);

// Euclidean distance in RGB space, in [0, ~441.7].
float RgbDistance(Rgb8 a, Rgb8 b);

// Multiplies each channel by `gain` (clamped to [0, 255]).
Rgb8 Scaled(Rgb8 c, float gain);

}  // namespace bb::imaging
