// Color-space utilities.
//
// The reconstruction framework and the location-inference attack (paper
// sec. VI) operate on *hue* so that matching is robust to ambient-light
// changes; the dynamic-virtual-background mitigation (sec. IX-A) manipulates
// brightness and saturation. This header provides the RGB <-> HSV machinery
// those components share.
#pragma once

#include <cstdint>

#include "imaging/image.h"

namespace bb::imaging {

// Hue in degrees [0, 360), saturation and value in [0, 1].
struct Hsv {
  float h = 0.0f;
  float s = 0.0f;
  float v = 0.0f;
};

Hsv RgbToHsv(Rgb8 c);
Rgb8 HsvToRgb(const Hsv& c);

// Shortest angular distance between two hues, in [0, 180].
float HueDistance(float h1, float h2);

// Rec.601 luma in [0, 255].
float Luma(Rgb8 c);

// Euclidean distance in RGB space, in [0, ~441.7].
float RgbDistance(Rgb8 a, Rgb8 b);

// True when the two colors match within the given per-channel tolerance.
bool NearlyEqual(Rgb8 a, Rgb8 b, int channel_tolerance);

// Linear interpolation between two colors; t in [0, 1] (clamped).
Rgb8 Lerp(Rgb8 a, Rgb8 b, float t);

// Multiplies each channel by `gain` (clamped to [0, 255]).
Rgb8 Scaled(Rgb8 c, float gain);

// A color "bucket" used by the statistical color-frequency refinement of the
// video-caller mask (paper sec. V-D) and by the hue histograms in the
// attacks. Quantizes RGB to a small key so frequencies can be counted in a
// flat array.
//
// Layout: 4 bits per channel -> 4096 buckets.
inline constexpr int kColorBucketCount = 4096;
inline int ColorBucket(Rgb8 c) {
  return ((c.r >> 4) << 8) | ((c.g >> 4) << 4) | (c.b >> 4);
}

}  // namespace bb::imaging
