// Small geometric value types shared by the drawing, detection and synthesis
// layers.
#pragma once

#include <algorithm>
#include <cmath>

namespace bb::imaging {

struct Point {
  int x = 0;
  int y = 0;
  constexpr bool operator==(const Point&) const = default;
};

struct PointF {
  double x = 0.0;
  double y = 0.0;
  constexpr bool operator==(const PointF&) const = default;
};

// Axis-aligned rectangle; (x, y) is the top-left corner, width/height may be
// zero (empty rectangle) but never negative.
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  constexpr bool operator==(const Rect&) const = default;

  int x2() const { return x + w; }  // exclusive
  int y2() const { return y + h; }  // exclusive
  bool Empty() const { return w <= 0 || h <= 0; }
  long long Area() const {
    return Empty() ? 0 : static_cast<long long>(w) * h;
  }
  bool Contains(int px, int py) const {
    return px >= x && py >= y && px < x2() && py < y2();
  }
  Point Center() const { return {x + w / 2, y + h / 2}; }

  Rect Intersect(const Rect& o) const {
    const int nx = std::max(x, o.x);
    const int ny = std::max(y, o.y);
    const int nx2 = std::min(x2(), o.x2());
    const int ny2 = std::min(y2(), o.y2());
    if (nx2 <= nx || ny2 <= ny) return {};
    return {nx, ny, nx2 - nx, ny2 - ny};
  }

  Rect Union(const Rect& o) const {
    if (Empty()) return o;
    if (o.Empty()) return *this;
    const int nx = std::min(x, o.x);
    const int ny = std::min(y, o.y);
    const int nx2 = std::max(x2(), o.x2());
    const int ny2 = std::max(y2(), o.y2());
    return {nx, ny, nx2 - nx, ny2 - ny};
  }

  // Rectangle grown by `margin` on every side (shrunk when negative).
  Rect Inflated(int margin) const {
    Rect r{x - margin, y - margin, w + 2 * margin, h + 2 * margin};
    if (r.w < 0) r.w = 0;
    if (r.h < 0) r.h = 0;
    return r;
  }
};

// Intersection-over-union of two rectangles (0 when either is empty and
// they do not overlap).
inline double RectIou(const Rect& a, const Rect& b) {
  const long long inter = a.Intersect(b).Area();
  const long long uni = a.Area() + b.Area() - inter;
  if (uni <= 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

inline double Distance(const PointF& a, const PointF& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace bb::imaging
