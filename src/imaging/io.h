// Image file I/O.
//
// PPM (binary P6) is always available and dependency-free; PNG is compiled
// in when libpng is found at configure time (BB_HAVE_PNG). Examples write
// whichever format the caller asks for.
#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "imaging/image.h"

namespace bb::imaging {

// Hard limits every reader applies to header-advertised dimensions before
// allocating pixel storage. Hostile or corrupt headers are rejected with a
// named error instead of overflowing int arithmetic or attempting a
// multi-gigabyte allocation.
inline constexpr long long kMaxImageDimension = 1 << 15;  // 32768 px per side
inline constexpr long long kMaxImagePixels = 1LL << 26;   // 64 Mpx per image

// Validates reader-supplied dimensions against the limits above. Returns
// nullptr when acceptable, else the name of the violated constraint
// (e.g. "dimension exceeds kMaxImageDimension").
const char* CheckImageDims(long long w, long long h);

// Writes a binary P6 PPM. Returns false (and leaves no partial file
// guarantees) on I/O failure.
bool WritePpm(const Image& img, const std::string& path);

// Reads a binary P6 PPM; nullopt on parse or I/O failure. When `error` is
// non-null it receives the reason for a failed read ("ppm: <what>").
std::optional<Image> ReadPpm(const std::string& path,
                             std::string* error = nullptr);

// True when PNG support was compiled in.
bool PngSupported();

// Writes an 8-bit RGB PNG. Returns false when PNG support is unavailable or
// on I/O failure.
bool WritePng(const Image& img, const std::string& path);

// Reads a PNG into RGB8 (gray/palette/alpha inputs are expanded; 16-bit is
// reduced). nullopt when unsupported, missing, or malformed. When `error`
// is non-null it receives the reason for a failed read ("png: <what>").
std::optional<Image> ReadPng(const std::string& path,
                             std::string* error = nullptr);

// Reads by extension: .png via ReadPng, anything else via ReadPpm.
std::optional<Image> ReadImageAuto(const std::string& path);

// Status-returning loaders over the readers above: the same validation, but
// a failed load carries the reason (code + "ppm:"/"png:"-prefixed message
// with the path attached) instead of a bare nullopt. A missing file is
// kNotFound; a malformed or truncated one is kDataLoss.
Result<Image> LoadPpm(const std::string& path);
Result<Image> LoadPng(const std::string& path);
// By extension, like ReadImageAuto.
Result<Image> LoadImageAuto(const std::string& path);

// Convenience: writes PNG when supported, else PPM with the extension
// swapped to .ppm. Returns the path actually written, or nullopt on failure.
std::optional<std::string> WriteImageAuto(const Image& img,
                                          const std::string& path_base);

// Renders a bitmap as a grayscale visualization (set = white).
Image MaskToImage(const Bitmap& mask);

}  // namespace bb::imaging
