#include "imaging/connected_components.h"

#include <algorithm>

namespace bb::imaging {

Labeling LabelComponents(const Bitmap& mask, Connectivity connectivity) {
  const int w = mask.width(), h = mask.height();
  Labeling out;
  out.labels = ImageT<int>(w, h, 0);
  if (w == 0 || h == 0) return out;

  std::vector<Point> stack;
  int next_label = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!mask(x, y) || out.labels(x, y) != 0) continue;
      ++next_label;
      Component comp;
      comp.label = next_label;
      comp.bbox = {x, y, 1, 1};
      double sum_x = 0.0, sum_y = 0.0;
      stack.push_back({x, y});
      out.labels(x, y) = next_label;
      while (!stack.empty()) {
        const Point p = stack.back();
        stack.pop_back();
        ++comp.area;
        sum_x += p.x;
        sum_y += p.y;
        comp.bbox = comp.bbox.Union({p.x, p.y, 1, 1});
        constexpr int kDx[] = {1, -1, 0, 0, 1, 1, -1, -1};
        constexpr int kDy[] = {0, 0, 1, -1, 1, -1, 1, -1};
        const int neighbours =
            connectivity == Connectivity::kEight ? 8 : 4;
        for (int k = 0; k < neighbours; ++k) {
          const int nx = p.x + kDx[k], ny = p.y + kDy[k];
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          if (!mask(nx, ny) || out.labels(nx, ny) != 0) continue;
          out.labels(nx, ny) = next_label;
          stack.push_back({nx, ny});
        }
      }
      comp.centroid = {sum_x / static_cast<double>(comp.area),
                       sum_y / static_cast<double>(comp.area)};
      out.components.push_back(comp);
    }
  }
  return out;
}

Bitmap RemoveSmallComponents(const Bitmap& mask, std::size_t min_area) {
  const Labeling labeling = LabelComponents(mask);
  std::vector<bool> keep(labeling.components.size() + 1, false);
  for (const Component& c : labeling.components) {
    keep[static_cast<std::size_t>(c.label)] = c.area >= min_area;
  }
  Bitmap out(mask.width(), mask.height());
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      const int label = labeling.labels(x, y);
      out(x, y) = (label != 0 && keep[static_cast<std::size_t>(label)])
                      ? kMaskSet
                      : kMaskClear;
    }
  }
  return out;
}

Bitmap LargestComponent(const Bitmap& mask) {
  const Labeling labeling = LabelComponents(mask);
  if (labeling.components.empty()) {
    return Bitmap(mask.width(), mask.height());
  }
  const auto best = std::max_element(
      labeling.components.begin(), labeling.components.end(),
      [](const Component& a, const Component& b) { return a.area < b.area; });
  Bitmap out(mask.width(), mask.height());
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      out(x, y) = labeling.labels(x, y) == best->label ? kMaskSet : kMaskClear;
    }
  }
  return out;
}

}  // namespace bb::imaging
