// Color statistics.
//
// The video-caller mask refinement (paper sec. V-D) reclassifies pixels
// whose color is statistically rare within the caller region; the location
// attack compares hue histograms. Both build on these counters.
#pragma once

#include <array>
#include <vector>

#include "imaging/color.h"
#include "imaging/image.h"

namespace bb::imaging {

// Counts of quantized colors (kColorBucketCount buckets, 4 bits/channel).
class ColorFrequency {
 public:
  ColorFrequency() : counts_(kColorBucketCount, 0) {}

  void Add(Rgb8 c) {
    ++counts_[static_cast<std::size_t>(ColorBucket(c))];
    ++total_;
  }

  // Adds every pixel of `img` where `mask` is set.
  void AddMasked(const Image& img, const Bitmap& mask);

  std::uint64_t Count(Rgb8 c) const {
    return counts_[static_cast<std::size_t>(ColorBucket(c))];
  }
  std::uint64_t total() const { return total_; }

  // Relative frequency of the color's bucket in [0, 1]; 0 when empty.
  double Frequency(Rgb8 c) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(Count(c)) / static_cast<double>(total_);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Hue histogram over `bins` equal slices of [0, 360); pixels with
// saturation or value below the thresholds are skipped (hue is meaningless
// for near-gray pixels).
struct HueHistogramOptions {
  int bins = 36;
  float min_saturation = 0.12f;
  float min_value = 0.08f;
};

std::vector<double> HueHistogram(const Image& img, const Bitmap& mask,
                                 const HueHistogramOptions& opts = {});

// Histogram intersection similarity in [0, 1] for two normalized
// histograms of the same size.
double HistogramIntersection(const std::vector<double>& a,
                             const std::vector<double>& b);

// Mean color of the masked region (black when the mask is empty).
Rgb8 MeanColor(const Image& img, const Bitmap& mask);

}  // namespace bb::imaging
