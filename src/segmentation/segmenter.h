// Person segmentation - the DeepLabv3 substitute.
//
// The paper generates the video-caller mask VCM with DeepLabv3 (sec. V-D),
// run offline on the recorded call. No pretrained network is available
// here, so two substitutes cover the same role:
//   * NoisyOracleSegmenter - degrades the ground-truth caller silhouette to
//     a configurable accuracy (default ~DeepLabv3-class IoU). Used by the
//     benches so the VCM quality is a controlled variable.
//   * ClassicalSegmenter   - a real segmenter with no oracle access: finds
//     the dynamic region of the call video, then refines it with a color
//     model. Proves the pipeline works end-to-end without ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "imaging/image.h"
#include "video/video.h"

namespace bb::segmentation {

class PersonSegmenter {
 public:
  virtual ~PersonSegmenter() = default;

  // Estimated caller mask for frame `frame_index` of `call`. Implementations
  // may precompute on first use; `call` must be the same stream across calls
  // of one instance.
  virtual imaging::Bitmap Segment(const video::VideoStream& call,
                                  int frame_index) = 0;
};

struct NoisyOracleParams {
  // Std-dev of the smooth boundary displacement, pixels. ~1.0 yields
  // IoU ~0.95 on 144p figures (DeepLabv3-class).
  double boundary_noise_px = 1.0;
  int noise_cell_px = 10;
  // The paper notes DeepLabv3's characteristic misses: background regions
  // under the head / between fingers kept as person. The oracle emulates
  // this by dilating concave pockets: probability of including a background
  // pixel that is surrounded by caller pixels.
  double pocket_inclusion = 0.5;
  double pocket_reach_px = 3.0;
};

class NoisyOracleSegmenter final : public PersonSegmenter {
 public:
  NoisyOracleSegmenter(std::vector<imaging::Bitmap> true_masks,
                       const NoisyOracleParams& params, std::uint64_t seed);

  imaging::Bitmap Segment(const video::VideoStream& call,
                          int frame_index) override;

 private:
  std::vector<imaging::Bitmap> true_masks_;
  NoisyOracleParams params_;
  std::uint64_t seed_;
};

struct ClassicalSegmenterParams {
  // A pixel belongs to the dynamic (caller) region when it deviates from
  // the static layer in at least this fraction of frames.
  double dynamic_fraction = 0.25;
  int channel_tolerance = 14;
  // Color-model refinement: pixels in the dynamic region whose color bucket
  // is rare inside the region's confident core are dropped.
  double rare_color_frequency = 0.004;
  double core_erode_px = 3.0;
  std::size_t min_island_area = 24;
};

class ClassicalSegmenter final : public PersonSegmenter {
 public:
  explicit ClassicalSegmenter(const ClassicalSegmenterParams& params = {});

  imaging::Bitmap Segment(const video::VideoStream& call,
                          int frame_index) override;

 private:
  void Prepare(const video::VideoStream& call);

  ClassicalSegmenterParams params_;
  bool prepared_ = false;
  const video::VideoStream* prepared_for_ = nullptr;
  imaging::Image static_layer_;
  imaging::FloatImage dynamic_score_;
};

}  // namespace bb::segmentation
