// Person segmentation - the DeepLabv3 substitute.
//
// The paper generates the video-caller mask VCM with DeepLabv3 (sec. V-D),
// run offline on the recorded call. No pretrained network is available
// here, so two substitutes cover the same role:
//   * NoisyOracleSegmenter - degrades the ground-truth caller silhouette to
//     a configurable accuracy (default ~DeepLabv3-class IoU). Used by the
//     benches so the VCM quality is a controlled variable.
//   * ClassicalSegmenter   - a real segmenter with no oracle access: finds
//     the dynamic region of the call video, then refines it with a color
//     model. Proves the pipeline works end-to-end without ground truth.
//
// Segmenters are streaming-native: any whole-call statistics are gathered
// through the analysis-pass protocol (sequential passes of per-frame pushes
// with O(1) frame state), after which Segment() masks a single frame.
// Segment() must be safe to call concurrently once the analysis passes have
// completed. Batch callers use SegmentBatch(), which drives the protocol
// over an in-memory stream automatically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "imaging/image.h"
#include "video/frame_source.h"
#include "video/temporal.h"
#include "video/video.h"

namespace bb::segmentation {

class PersonSegmenter {
 public:
  virtual ~PersonSegmenter() = default;

  // Number of sequential whole-stream passes the segmenter needs before
  // Segment() works (0 = stateless). For each pass p in order, the driver
  // calls BeginAnalysisPass(p, info), pushes every frame in order, then
  // EndAnalysisPass(p).
  virtual int AnalysisPasses() const { return 0; }
  virtual void BeginAnalysisPass(int pass, const video::StreamInfo& info) {
    (void)pass;
    (void)info;
  }
  virtual void PushAnalysisFrame(int pass, const imaging::Image& frame,
                                 int frame_index) {
    (void)pass;
    (void)frame;
    (void)frame_index;
  }
  virtual void EndAnalysisPass(int pass) { (void)pass; }

  // Estimated caller mask for one frame. Requires the analysis passes (if
  // any) to have run; thread-safe afterwards.
  virtual imaging::Bitmap Segment(const imaging::Image& frame,
                                  int frame_index) = 0;

  // Batch convenience: runs any pending analysis passes over `call` (cached
  // by stream identity, so repeated calls with the same stream analyze
  // once), then segments frame `frame_index`.
  imaging::Bitmap SegmentBatch(const video::VideoStream& call,
                               int frame_index);

 private:
  const video::VideoStream* analyzed_ = nullptr;
};

struct NoisyOracleParams {
  // Std-dev of the smooth boundary displacement, pixels. ~1.0 yields
  // IoU ~0.95 on 144p figures (DeepLabv3-class).
  double boundary_noise_px = 1.0;
  int noise_cell_px = 10;
  // The paper notes DeepLabv3's characteristic misses: background regions
  // under the head / between fingers kept as person. The oracle emulates
  // this by dilating concave pockets: probability of including a background
  // pixel that is surrounded by caller pixels.
  double pocket_inclusion = 0.5;
  double pocket_reach_px = 3.0;
};

class NoisyOracleSegmenter final : public PersonSegmenter {
 public:
  NoisyOracleSegmenter(std::vector<imaging::Bitmap> true_masks,
                       const NoisyOracleParams& params, std::uint64_t seed);

  imaging::Bitmap Segment(const imaging::Image& frame,
                          int frame_index) override;

 private:
  std::vector<imaging::Bitmap> true_masks_;
  NoisyOracleParams params_;
  std::uint64_t seed_;
};

struct ClassicalSegmenterParams {
  // A pixel belongs to the dynamic (caller) region when it deviates from
  // the static layer in at least this fraction of frames.
  double dynamic_fraction = 0.25;
  int channel_tolerance = 14;
  // Color-model refinement: pixels in the dynamic region whose color bucket
  // is rare inside the region's confident core are dropped.
  double rare_color_frequency = 0.004;
  double core_erode_px = 3.0;
  std::size_t min_island_area = 24;
};

class ClassicalSegmenter final : public PersonSegmenter {
 public:
  explicit ClassicalSegmenter(const ClassicalSegmenterParams& params = {});

  // Two streaming passes: static-layer accumulation, then per-pixel
  // dynamic-deviation scoring against that layer.
  int AnalysisPasses() const override { return 2; }
  void BeginAnalysisPass(int pass, const video::StreamInfo& info) override;
  void PushAnalysisFrame(int pass, const imaging::Image& frame,
                         int frame_index) override;
  void EndAnalysisPass(int pass) override;

  imaging::Bitmap Segment(const imaging::Image& frame,
                          int frame_index) override;

 private:
  ClassicalSegmenterParams params_;
  bool prepared_ = false;
  int frame_count_ = 0;
  std::optional<video::StaticLayerAccumulator> layer_acc_;
  imaging::Image static_layer_;
  imaging::FloatImage dynamic_score_;
};

}  // namespace bb::segmentation
