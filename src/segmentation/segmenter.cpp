#include "segmentation/segmenter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "imaging/color.h"
#include "imaging/connected_components.h"
#include "imaging/filter.h"
#include "imaging/histogram.h"
#include "imaging/morphology.h"
#include "synth/rng.h"
#include "vbg/noise_field.h"
#include "video/temporal.h"

namespace bb::segmentation {

using imaging::Bitmap;
using imaging::FloatImage;
using imaging::Image;

Bitmap PersonSegmenter::SegmentBatch(const video::VideoStream& call,
                                     int frame_index) {
  if (AnalysisPasses() > 0 && analyzed_ != &call) {
    const video::StreamInfo info{call.width(), call.height(),
                                 call.frame_count(), call.fps()};
    for (int pass = 0; pass < AnalysisPasses(); ++pass) {
      BeginAnalysisPass(pass, info);
      for (int i = 0; i < call.frame_count(); ++i) {
        PushAnalysisFrame(pass, call.frame(i), i);
      }
      EndAnalysisPass(pass);
    }
    analyzed_ = &call;
  }
  return Segment(call.frame(frame_index), frame_index);
}

NoisyOracleSegmenter::NoisyOracleSegmenter(
    std::vector<imaging::Bitmap> true_masks, const NoisyOracleParams& params,
    std::uint64_t seed)
    : true_masks_(std::move(true_masks)), params_(params), seed_(seed) {}

Bitmap NoisyOracleSegmenter::Segment(const Image& frame, int frame_index) {
  if (frame_index < 0 ||
      frame_index >= static_cast<int>(true_masks_.size())) {
    throw std::out_of_range("NoisyOracleSegmenter::Segment");
  }
  const Bitmap& truth = true_masks_[static_cast<std::size_t>(frame_index)];
  (void)frame;

  // Per-frame deterministic noise stream.
  synth::Rng rng(seed_ ^ (static_cast<std::uint64_t>(frame_index) * 0x9E37u));
  const int w = truth.width(), h = truth.height();

  const FloatImage dist_out = imaging::SquaredDistanceToSet(truth);
  const FloatImage dist_in =
      imaging::SquaredDistanceToSet(imaging::Not(truth));
  vbg::NoiseField noise(w, h, params_.noise_cell_px, rng);

  Bitmap est(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double signed_d = truth(x, y) ? -std::sqrt(dist_in(x, y))
                                          : std::sqrt(dist_out(x, y));
      if (signed_d <= noise.At(x, y) * params_.boundary_noise_px) {
        est(x, y) = imaging::kMaskSet;
      }
    }
  }

  // Concave pockets (under chin, between arm and torso): a closing absorbs
  // them; apply probabilistically so some pockets survive.
  if (params_.pocket_inclusion > 0.0 && params_.pocket_reach_px > 0.0) {
    const Bitmap closed = imaging::CloseDisc(truth, params_.pocket_reach_px);
    const Bitmap pockets = imaging::AndNot(closed, truth);
    vbg::NoiseField pocket_noise(w, h, params_.noise_cell_px, rng);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (!pockets(x, y)) continue;
        if (pocket_noise.At(x, y) * 0.5 + 0.5 < params_.pocket_inclusion) {
          est(x, y) = imaging::kMaskSet;
        }
      }
    }
  }
  return est;
}

ClassicalSegmenter::ClassicalSegmenter(const ClassicalSegmenterParams& params)
    : params_(params) {}

void ClassicalSegmenter::BeginAnalysisPass(int pass,
                                           const video::StreamInfo& info) {
  if (pass == 0) {
    // Static layer = best per-pixel estimate of the non-moving content (VB +
    // never-moving background); the caller is whatever keeps deviating.
    prepared_ = false;
    frame_count_ = info.frame_count;
    layer_acc_.emplace(
        video::ConsistencyOptions{params_.channel_tolerance});
  } else {
    dynamic_score_ = FloatImage(info.width, info.height, 0.0f);
  }
}

void ClassicalSegmenter::PushAnalysisFrame(int pass, const Image& frame,
                                           int frame_index) {
  (void)frame_index;
  if (pass == 0) {
    layer_acc_->Push(frame);
    return;
  }
  auto pf = frame.pixels();
  auto ps = static_layer_.pixels();
  auto pd = dynamic_score_.pixels();
  // bblint: allow(no-per-pixel-loop) -- accumulates a cross-frame float score plane; stateful, not a kernel
  for (std::size_t k = 0; k < pd.size(); ++k) {
    if (!imaging::NearlyEqual(pf[k], ps[k], params_.channel_tolerance)) {
      pd[k] += 1.0f;
    }
  }
}

void ClassicalSegmenter::EndAnalysisPass(int pass) {
  if (pass == 0) {
    static_layer_ =
        layer_acc_->Finalize(std::max(3, frame_count_ / 4)).color;
    layer_acc_.reset();
  } else {
    prepared_ = true;
  }
}

Bitmap ClassicalSegmenter::Segment(const Image& frame, int frame_index) {
  (void)frame_index;
  if (!prepared_) {
    throw std::logic_error("ClassicalSegmenter: analysis passes not run");
  }
  const int w = frame.width(), h = frame.height();
  const float dyn_threshold =
      static_cast<float>(params_.dynamic_fraction * frame_count_);

  // Candidate caller pixels: deviate from the static layer NOW and belong to
  // a generally dynamic region.
  Bitmap candidate(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const bool deviates_now = !imaging::NearlyEqual(
          frame(x, y), static_layer_(x, y), params_.channel_tolerance);
      if (deviates_now && dynamic_score_(x, y) >= dyn_threshold) {
        candidate(x, y) = imaging::kMaskSet;
      }
    }
  }
  candidate = imaging::CloseDisc(candidate, 2.0);
  candidate = imaging::RemoveSmallComponents(candidate,
                                             params_.min_island_area);
  Bitmap seed = imaging::LargestComponent(candidate);
  if (imaging::CountSet(seed) < 16) return seed;

  // The motion cue only finds the MOVING parts of the caller; a torso that
  // never moves is absorbed into the static layer. Grow the seed over
  // pixels sharing the seed's palette (apparel/skin colors), the way a
  // semantic segmenter would keep the whole person.
  imaging::ColorFrequency palette;
  const Bitmap seed_core = imaging::ErodeDisc(seed, 1.5);
  palette.AddMasked(frame,
                    imaging::CountSet(seed_core) > 32 ? seed_core : seed);
  // Growth is limited to the seed's neighbourhood: a person is one
  // connected region, so palette-colored pixels across the frame (e.g. a
  // virtual background sharing the shirt's hue) must not be absorbed.
  const Bitmap reach = imaging::DilateDisc(seed, h / 3.0);
  Bitmap grown = seed;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (grown(x, y) || !reach(x, y)) continue;
      if (palette.Frequency(frame(x, y)) >= 0.03) {
        grown(x, y) = imaging::kMaskSet;
      }
    }
  }
  grown = imaging::CloseDisc(grown, 2.0);
  // Keep only the grown regions attached to the moving seed.
  const auto labeling = imaging::LabelComponents(grown);
  std::vector<bool> keep(labeling.components.size() + 1, false);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (seed(x, y) && labeling.labels(x, y) > 0) {
        keep[static_cast<std::size_t>(labeling.labels(x, y))] = true;
      }
    }
  }
  Bitmap body(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int label = labeling.labels(x, y);
      if (label > 0 && keep[static_cast<std::size_t>(label)]) {
        body(x, y) = imaging::kMaskSet;
      }
    }
  }

  // Color-model refinement: drop boundary pixels whose color is rare in the
  // confident core (leaked background trapped at the rim).
  const Bitmap core = imaging::ErodeDisc(body, params_.core_erode_px);
  if (imaging::CountSet(core) > 32) {
    imaging::ColorFrequency freq;
    freq.AddMasked(frame, core);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (!body(x, y) || core(x, y)) continue;
        if (freq.Frequency(frame(x, y)) < params_.rare_color_frequency) {
          body(x, y) = imaging::kMaskClear;
        }
      }
    }
    body = imaging::CloseDisc(body, 1.0);
  }
  return body;
}

}  // namespace bb::segmentation
