// The real background reconstruction framework (paper sec. V, Fig. 4).
//
// Per frame f^i of the recorded call:
//   VBM^i  <- virtual background masking   (vb_masking.h)
//   BBM^i  <- blending blur masking        (blur_masking.h, radius phi)
//   VCM^i  <- video caller masking         (caller_masking.h)
//   LB^i   = f^i minus (VBM | BBM | VCM)   - residue = leaked background
// The LB residues of all frames are combined into a partial reconstruction
// of the real background.
#pragma once

#include <vector>

#include "core/blur_masking.h"
#include "core/caller_masking.h"
#include "core/vb_masking.h"
#include "imaging/image.h"
#include "video/video.h"

namespace bb::core {

struct ReconstructionOptions {
  double phi = kDefaultPhi;
  VbMaskingOptions vb;
  CallerMaskingOptions caller;
  // Color-stability filter (the paper's Color Analysis, sec. V-D): a truly
  // leaked background pixel keeps the same color every time it leaks, while
  // caller-boundary pixels vary as the caller moves. Pixels whose observed
  // leak values spread (per-channel std-dev) beyond this are dropped from
  // the reconstruction. <= 0 disables the filter.
  double max_color_spread = 30.0;
  // Minimum number of frames a pixel must leak in to enter the
  // reconstruction. 1 keeps everything; 2 discards one-off boundary noise.
  int min_leak_count = 2;
  // Keep per-frame decompositions in the result (memory-heavy; useful for
  // visualization and tests).
  bool keep_frame_masks = false;
};

// The four conceptual components of one blended frame (paper Fig. 3).
struct FrameDecomposition {
  imaging::Bitmap vbm;  // virtual background
  imaging::Bitmap bbm;  // blending blur (superset of vbm by construction)
  imaging::Bitmap vcm;  // video caller
  imaging::Bitmap lb;   // leaked background residue
};

struct ReconstructionResult {
  // Mean of the leaked values observed at each recovered pixel.
  imaging::Image background;
  // Pixels recovered in at least one frame.
  imaging::Bitmap coverage;
  // Number of frames in which each pixel leaked.
  imaging::ImageT<int> leak_counts;
  // Per-frame fraction of the frame classified as leaked background.
  std::vector<double> per_frame_leak_fraction;
  // Optional per-frame masks (see ReconstructionOptions::keep_frame_masks).
  std::vector<FrameDecomposition> frame_masks;

  // Fraction of all pixels recovered at least once ("claimed" coverage; the
  // verified variant lives in metrics.h because it needs ground truth).
  double CoverageFraction() const {
    return imaging::SetFraction(coverage);
  }
};

class Reconstructor {
 public:
  // `reference` identifies/derives the VB; `segmenter` supplies the person
  // masks. Both are borrowed and must outlive the Reconstructor.
  Reconstructor(const VbReference& reference,
                segmentation::PersonSegmenter& segmenter,
                const ReconstructionOptions& opts = {});

  // Precomputes the caller-masking state for `call` (Run() does this
  // implicitly; call it directly when only using Decompose()).
  void PrepareCaller(const video::VideoStream& call);

  // Decomposes a single frame (VBM/BBM/VCM/LB). Requires PrepareCaller()
  // or Run() to have processed the call first.
  FrameDecomposition Decompose(const video::VideoStream& call,
                               int frame_index) const;

  // Full pipeline over every frame of the call. Thin batch-compat wrapper
  // over the streaming core (streaming.h) with window = call length, which
  // makes it bit-identical to the pre-streaming implementation.
  ReconstructionResult Run(const video::VideoStream& call);

  const ReconstructionOptions& options() const { return opts_; }

 private:
  const VbReference& reference_;
  segmentation::PersonSegmenter& segmenter_;
  CallerMasker caller_masker_;
  ReconstructionOptions opts_;
  bool caller_prepared_ = false;
};

}  // namespace bb::core
