#include "core/caller_masking.h"

#include <stdexcept>

#include "imaging/color.h"
#include "imaging/morphology.h"

namespace bb::core {

using imaging::Bitmap;

CallerMasker::CallerMasker(segmentation::PersonSegmenter& segmenter,
                           const CallerMaskingOptions& opts)
    : segmenter_(segmenter),
      opts_(opts),
      color_counts_(imaging::kColorBucketCount, 0) {}

void CallerMasker::Prepare(const video::VideoStream& call) {
  raw_masks_.clear();
  std::fill(color_counts_.begin(), color_counts_.end(), 0);
  color_total_ = 0;

  for (int i = 0; i < call.frame_count(); ++i) {
    Bitmap mask = segmenter_.Segment(call, i);
    auto pf = call.frame(i).pixels();
    auto pm = mask.pixels();
    for (std::size_t k = 0; k < pm.size(); ++k) {
      if (!pm[k]) continue;
      ++color_counts_[static_cast<std::size_t>(imaging::ColorBucket(pf[k]))];
      ++color_total_;
    }
    raw_masks_.push_back(std::move(mask));
  }
  prepared_ = true;
}

const Bitmap& CallerMasker::RawSegmenterMask(int frame_index) const {
  if (!prepared_) throw std::logic_error("CallerMasker: not prepared");
  return raw_masks_.at(static_cast<std::size_t>(frame_index));
}

Bitmap CallerMasker::Vcm(const video::VideoStream& call,
                         int frame_index) const {
  if (!prepared_) throw std::logic_error("CallerMasker: not prepared");
  const Bitmap& raw = raw_masks_.at(static_cast<std::size_t>(frame_index));
  Bitmap vcm = raw;
  if (color_total_ == 0 || opts_.rare_color_frequency <= 0.0) return vcm;

  // Only the uncertain boundary band is eligible for flipping.
  const Bitmap core = imaging::ErodeDisc(raw, opts_.protect_core_px);

  const auto& frame = call.frame(frame_index);
  const double threshold =
      opts_.rare_color_frequency * static_cast<double>(color_total_);
  for (int y = 0; y < vcm.height(); ++y) {
    for (int x = 0; x < vcm.width(); ++x) {
      if (!vcm(x, y) || core(x, y)) continue;
      const auto count = color_counts_[static_cast<std::size_t>(
          imaging::ColorBucket(frame(x, y)))];
      if (static_cast<double>(count) < threshold) {
        vcm(x, y) = imaging::kMaskClear;
      }
    }
  }
  return vcm;
}

}  // namespace bb::core
