#include "core/caller_masking.h"

#include <stdexcept>

#include "imaging/color.h"
#include "imaging/kernels/kernels.h"
#include "imaging/morphology.h"

namespace bb::core {

using imaging::Bitmap;

CallerMasker::CallerMasker(segmentation::PersonSegmenter& segmenter,
                           const CallerMaskingOptions& opts)
    : segmenter_(segmenter),
      opts_(opts),
      color_counts_(imaging::kColorBucketCount, 0) {}

void CallerMasker::Prepare(const video::VideoStream& call) {
  BeginPrepare();
  for (int i = 0; i < call.frame_count(); ++i) {
    Bitmap mask = segmenter_.SegmentBatch(call, i);
    AccumulateStats(call.frame(i), mask);
    raw_masks_.push_back(std::move(mask));
  }
  EndPrepare();
  prepared_ = true;
}

void CallerMasker::BeginPrepare() {
  raw_masks_.clear();
  std::fill(color_counts_.begin(), color_counts_.end(), 0);
  color_total_ = 0;
  stats_ready_ = false;
  prepared_ = false;
}

Bitmap CallerMasker::PushPrepare(const imaging::Image& frame,
                                 int frame_index) {
  Bitmap mask = segmenter_.Segment(frame, frame_index);
  AccumulateStats(frame, mask);
  return mask;
}

void CallerMasker::EndPrepare() { stats_ready_ = true; }

void CallerMasker::AccumulateStats(const imaging::Image& frame,
                                   const imaging::Bitmap& mask) {
  color_total_ += imaging::kernels::ColorBucketHistogram(
      frame.pixels(), mask.pixels(), color_counts_);
}

const Bitmap& CallerMasker::RawSegmenterMask(int frame_index) const {
  if (!prepared_) throw std::logic_error("CallerMasker: not prepared");
  return raw_masks_.at(static_cast<std::size_t>(frame_index));
}

Bitmap CallerMasker::Vcm(const video::VideoStream& call,
                         int frame_index) const {
  if (!prepared_) throw std::logic_error("CallerMasker: not prepared");
  return Refine(call.frame(frame_index),
                raw_masks_.at(static_cast<std::size_t>(frame_index)));
}

Bitmap CallerMasker::Vcm(const imaging::Image& frame, int frame_index) const {
  return Refine(frame, segmenter_.Segment(frame, frame_index));
}

Bitmap CallerMasker::Refine(const imaging::Image& frame,
                            const imaging::Bitmap& raw) const {
  if (!stats_ready_) throw std::logic_error("CallerMasker: not prepared");
  Bitmap vcm = raw;
  if (color_total_ == 0 || opts_.rare_color_frequency <= 0.0) return vcm;

  // Only the uncertain boundary band is eligible for flipping.
  const Bitmap core = imaging::ErodeDisc(raw, opts_.protect_core_px);

  const double threshold =
      opts_.rare_color_frequency * static_cast<double>(color_total_);
  for (int y = 0; y < vcm.height(); ++y) {
    for (int x = 0; x < vcm.width(); ++x) {
      if (!vcm(x, y) || core(x, y)) continue;
      const auto count = color_counts_[static_cast<std::size_t>(
          imaging::ColorBucket(frame(x, y)))];
      if (static_cast<double>(count) < threshold) {
        vcm(x, y) = imaging::kMaskClear;
      }
    }
  }
  return vcm;
}

}  // namespace bb::core
