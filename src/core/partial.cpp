#include "core/partial.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/fileio.h"
#include "core/wire.h"

namespace bb::core {

namespace {

constexpr char kMagic[4] = {'B', 'B', 'P', 'R'};
constexpr std::uint32_t kVersion = 1;
// Fixed-size header through the quarantine count (see partial.h layout).
constexpr std::size_t kHeaderBytes = 68;

Status Corrupt(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

// " at bytes b-e" suffix naming the half-open byte span [pos, pos + len).
std::string At(std::size_t pos, std::size_t len) {
  return " at bytes " + std::to_string(pos) + "-" +
         std::to_string(pos + len - 1);
}

}  // namespace

void LeakAccumulators::Zero(std::size_t pixels) {
  counts.assign(pixels, 0);
  sum_r.assign(pixels, 0.0);
  sum_g.assign(pixels, 0.0);
  sum_b.assign(pixels, 0.0);
  sum_r2.assign(pixels, 0.0);
  sum_g2.assign(pixels, 0.0);
  sum_b2.assign(pixels, 0.0);
}

void LeakAccumulators::Add(const LeakAccumulators& other) {
  for (std::size_t k = 0; k < counts.size(); ++k) {
    counts[k] += other.counts[k];
    sum_r[k] += other.sum_r[k];
    sum_g[k] += other.sum_g[k];
    sum_b[k] += other.sum_b[k];
    sum_r2[k] += other.sum_r2[k];
    sum_g2[k] += other.sum_g2[k];
    sum_b2[k] += other.sum_b2[k];
  }
}

std::uint64_t ConfigHash(const ReconstructionOptions& opts,
                         std::uint64_t salt) {
  std::string bytes;
  bytes.append("bbcfg1");
  wire::PutF64(&bytes, opts.phi);
  wire::PutU32(&bytes, static_cast<std::uint32_t>(opts.vb.match_tolerance));
  wire::PutU32(&bytes,
               static_cast<std::uint32_t>(opts.vb.score_frame_stride));
  wire::PutU32(&bytes,
               static_cast<std::uint32_t>(opts.vb.score_pixel_stride));
  wire::PutF64(&bytes, opts.caller.rare_color_frequency);
  wire::PutF64(&bytes, opts.caller.protect_core_px);
  wire::PutF64(&bytes, opts.max_color_spread);
  wire::PutU32(&bytes, static_cast<std::uint32_t>(opts.min_leak_count));
  wire::PutU64(&bytes, salt);
  return wire::Fnv1a64(bytes);
}

Status SavePartial(const PartialResult& partial, const std::string& path) {
  const std::size_t pixels = partial.acc.pixels();
  std::string out;
  out.reserve(kHeaderBytes + partial.quarantined.size() * 4 +
              pixels * 7 * 8 + partial.per_frame_leak_fraction.size() * 8 +
              16);
  out.append(kMagic, 4);
  wire::PutU32(&out, kVersion);
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.info.width));
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.info.height));
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.info.frame_count));
  wire::PutU32(&out, static_cast<std::uint32_t>(
                         std::lround(partial.info.fps * 1000.0)));
  wire::PutU64(&out, partial.config_hash);
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.range_begin));
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.range_end));
  wire::PutU32(&out, static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(partial.bad_budget)));
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.min_leak_count));
  wire::PutF64(&out, partial.max_color_spread);
  wire::PutU64(&out, partial.bad_frame_events);
  wire::PutU32(&out, static_cast<std::uint32_t>(partial.quarantined.size()));
  for (int q : partial.quarantined) {
    wire::PutU32(&out, static_cast<std::uint32_t>(q));
  }
  wire::PutU64(&out, static_cast<std::uint64_t>(pixels));
  for (int c : partial.acc.counts) {
    wire::PutU64(&out, static_cast<std::uint64_t>(c));
  }
  for (const std::vector<double>* arr :
       {&partial.acc.sum_r, &partial.acc.sum_g, &partial.acc.sum_b,
        &partial.acc.sum_r2, &partial.acc.sum_g2, &partial.acc.sum_b2}) {
    for (double v : *arr) wire::PutF64(&out, v);
  }
  for (double v : partial.per_frame_leak_fraction) wire::PutF64(&out, v);
  wire::PutU64(&out, wire::Fnv1a64(out));

  return common::AtomicWriteFile(out, path, "partial");
}

Result<PartialResult> LoadPartial(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status(StatusCode::kNotFound, "no partial file")
        .WithContext("partial " + path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  const auto reject = [&path](const Status& status) {
    return status.WithContext("partial " + path);
  };
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return reject(Corrupt("bad magic at bytes 0-3 (want BBPR)"));
  }
  if (bytes.size() < kHeaderBytes + 8 + 8) {
    return reject(Corrupt("truncated header (want at least " +
                          std::to_string(kHeaderBytes + 16) + " bytes, got " +
                          std::to_string(bytes.size()) + ")"));
  }
  // Checksum first: any bit flip anywhere is caught before parsing.
  const std::string body = bytes.substr(0, bytes.size() - 8);
  wire::Reader tail{bytes, bytes.size() - 8};
  std::uint64_t declared_sum = 0;
  (void)tail.TakeU64(&declared_sum);
  if (wire::Fnv1a64(body) != declared_sum) {
    return reject(Corrupt("checksum mismatch" + At(bytes.size() - 8, 8) +
                          " (file corrupted)"));
  }

  wire::Reader r{body, 4};
  std::uint32_t version = 0;
  (void)r.TakeU32(&version);
  if (version != kVersion) {
    return reject(
        Status(StatusCode::kFailedPrecondition,
               "unsupported partial version " + std::to_string(version) +
                   " (want " + std::to_string(kVersion) + ")" + At(4, 4)));
  }
  std::uint32_t w = 0, h = 0, frames = 0, fps_mhz = 0;
  std::uint64_t config_hash = 0;
  std::uint32_t range_begin = 0, range_end = 0, budget_raw = 0,
                min_leak = 0;
  double color_spread = 0.0;
  std::uint64_t bad_events = 0;
  std::uint32_t quarantine_count = 0;
  (void)r.TakeU32(&w);
  (void)r.TakeU32(&h);
  (void)r.TakeU32(&frames);
  (void)r.TakeU32(&fps_mhz);
  (void)r.TakeU64(&config_hash);
  (void)r.TakeU32(&range_begin);
  (void)r.TakeU32(&range_end);
  (void)r.TakeU32(&budget_raw);
  (void)r.TakeU32(&min_leak);
  (void)r.TakeF64(&color_spread);
  (void)r.TakeU64(&bad_events);
  (void)r.TakeU32(&quarantine_count);
  if (w == 0 || h == 0 || w > 16384 || h > 16384 || frames > 1000000) {
    return reject(Corrupt("implausible stream identity" + At(8, 16)));
  }
  if (range_begin > range_end || range_end > frames) {
    return reject(Corrupt(
        "implausible frame range [" + std::to_string(range_begin) + ", " +
        std::to_string(range_end) + ") for a stream of " +
        std::to_string(frames) + " frames" + At(32, 8)));
  }
  const std::int32_t budget = static_cast<std::int32_t>(budget_raw);
  if (budget < -1) {
    return reject(Corrupt("implausible bad-frame budget" + At(40, 4)));
  }
  if (min_leak > 1000000) {
    return reject(Corrupt("implausible min_leak_count" + At(44, 4)));
  }
  if (!std::isfinite(color_spread)) {
    return reject(Corrupt("non-finite max_color_spread" + At(48, 8)));
  }
  if (quarantine_count > frames) {
    return reject(Corrupt("implausible quarantine count" + At(64, 4)));
  }

  PartialResult partial;
  partial.info.width = static_cast<int>(w);
  partial.info.height = static_cast<int>(h);
  partial.info.frame_count = static_cast<int>(frames);
  partial.info.fps = fps_mhz / 1000.0;
  partial.config_hash = config_hash;
  partial.range_begin = static_cast<int>(range_begin);
  partial.range_end = static_cast<int>(range_end);
  partial.bad_budget = budget;
  partial.min_leak_count = static_cast<int>(min_leak);
  partial.max_color_spread = color_spread;
  partial.bad_frame_events = bad_events;
  partial.quarantined.reserve(quarantine_count);
  int prev = -1;
  for (std::uint32_t i = 0; i < quarantine_count; ++i) {
    const std::size_t pos = r.pos;
    std::uint32_t q = 0;
    if (!r.TakeU32(&q)) {
      return reject(Corrupt("truncated quarantine list"));
    }
    if (q >= frames || static_cast<int>(q) <= prev) {
      return reject(
          Corrupt("quarantine list not ascending in-range" + At(pos, 4)));
    }
    prev = static_cast<int>(q);
    partial.quarantined.push_back(prev);
  }
  const std::size_t pixels_pos = r.pos;
  std::uint64_t pixels = 0;
  if (!r.TakeU64(&pixels)) {
    return reject(Corrupt("truncated accumulators"));
  }
  if (pixels != static_cast<std::uint64_t>(w) * h) {
    return reject(Corrupt("pixel count does not match dimensions" +
                          At(pixels_pos, 8)));
  }
  const std::uint64_t range_frames = range_end - range_begin;
  partial.acc.counts.reserve(pixels);
  for (std::uint64_t i = 0; i < pixels; ++i) {
    const std::size_t pos = r.pos;
    std::uint64_t c = 0;
    if (!r.TakeU64(&c)) return reject(Corrupt("truncated accumulators"));
    // A pixel can only leak in frames this shard decomposed.
    if (c > range_frames) {
      return reject(
          Corrupt("leak count exceeds the shard's frame range" + At(pos, 8)));
    }
    partial.acc.counts.push_back(static_cast<int>(c));
  }
  for (std::vector<double>* arr :
       {&partial.acc.sum_r, &partial.acc.sum_g, &partial.acc.sum_b,
        &partial.acc.sum_r2, &partial.acc.sum_g2, &partial.acc.sum_b2}) {
    arr->reserve(pixels);
    for (std::uint64_t i = 0; i < pixels; ++i) {
      const std::size_t pos = r.pos;
      double v = 0.0;
      if (!r.TakeF64(&v)) return reject(Corrupt("truncated accumulators"));
      if (!std::isfinite(v)) {
        return reject(Corrupt("non-finite accumulator value" + At(pos, 8)));
      }
      arr->push_back(v);
    }
  }
  partial.per_frame_leak_fraction.reserve(range_frames);
  for (std::uint64_t i = 0; i < range_frames; ++i) {
    const std::size_t pos = r.pos;
    double v = 0.0;
    if (!r.TakeF64(&v)) {
      return reject(Corrupt("truncated per-frame leak fractions"));
    }
    if (!std::isfinite(v)) {
      return reject(
          Corrupt("non-finite per-frame leak fraction" + At(pos, 8)));
    }
    partial.per_frame_leak_fraction.push_back(v);
  }
  if (r.pos != body.size()) {
    return reject(Corrupt("trailing bytes after the declared payload" +
                          At(r.pos, body.size() - r.pos)));
  }
  return partial;
}

}  // namespace bb::core
