// Streaming reconstruction core (ROADMAP: O(window) memory end-to-end).
//
// StreamingReconstructor runs the full reconstruction framework of
// reconstruction.h over a video::FrameSource without ever materializing the
// call: frame state is bounded by a FrameWindow, mask/frame buffers recycle
// through a BufferPool, and the whole-call statistics (segmenter analysis,
// caller color model, leak accumulators) are incremental with O(pixels)
// state. The batch Reconstructor::Run is a thin wrapper over this class
// (window = call length), and the two are bit-identical at any thread
// count: per-shard leak accumulators persist across window flushes and sum
// integer-valued doubles, so the reduction is exact regardless of how the
// frames were windowed or sharded.
//
// Pass protocol (TotalPasses() sequential pulls over a rewindable source):
//   passes [0, A)  - segmenter analysis passes (A = AnalysisPasses())
//   pass A         - caller statistics (segment + color histogram); raw
//                    masks are cached only when the window covers the call
//   pass A+1       - windowed decomposition + leak accumulation
// Run() drives all passes; the Begin/BeginPass/PushFrame/EndPass/Finalize
// surface is public for callers that push frames as they arrive.
//
// Shard mode (DESIGN.md section 14): with shard_count > 0 the worker runs
// the cheap analysis/caller passes over the whole stream (identical global
// statistics on every worker) but decomposes only its frame slice
// [frames*i/N, frames*(i+1)/N), fast-forwarding to the slice start via
// video::FrameSource::Seek when the source supports it. RunPartial() then
// emits a sealed mergeable partial (core/partial.h) instead of finalizing;
// core/reduce.h folds the K partials into output bit-identical to a
// single-process run at any shard count, thread count, or window size.
//
// Fault tolerance (DESIGN.md section 11):
//   * A frame reported bad (PushBadFrame, or a kBad pull inside Run) is
//     *quarantined*: excluded from every pass - analysis, caller prep, and
//     decomposition - so the final output is bit-identical to a clean run
//     over the surviving frames, at any thread count or window size. The
//     quarantine is sticky across passes; schedule-driven injected faults
//     fire on every pass by construction, so a frame is consistently in or
//     out of the whole computation.
//   * An error budget (max_bad_frames / max_bad_fraction) bounds how much
//     degradation is acceptable; one quarantine past the budget fails the
//     run with a structured kAborted status.
//   * With checkpoint_path set, per-pass progress is serialized after every
//     window flush (write-temp-then-rename; see core/checkpoint.h) and
//     Begin() resumes from a valid checkpoint, fast-forwarding the
//     decomposition pass with bit-identical final output. A hostile or
//     stale checkpoint is discarded with a structured reason
//     (checkpoint_status()) and the run starts fresh. Shard workers
//     checkpoint within their own slice; a checkpoint written for a
//     different shard range is refused like a different stream.
//   * With no faults, budgets, or checkpoint configured, all of this is a
//     few integer compares per frame - outputs are byte-identical to the
//     pre-fault-tolerance pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "core/partial.h"
#include "core/reconstruction.h"
#include "imaging/image.h"
#include "video/frame_source.h"

namespace bb::core {

struct StreamingOptions {
  // Capacity of the reconstruction window in frames (>= 1) - the only
  // multi-frame frame state. Peak frame-buffer residency is bounded by this,
  // never by the call length.
  int window_frames = 64;
  ReconstructionOptions recon;

  // Error budget: the run fails (kAborted) once more than this many frames
  // are quarantined. max_bad_frames is absolute (-1 = unlimited);
  // max_bad_fraction is a fraction of the stream's frame count (< 0 =
  // unlimited). When both are set the tighter one wins.
  int max_bad_frames = -1;
  double max_bad_fraction = -1.0;

  // When non-empty, decomposition progress is checkpointed here after every
  // window flush and Begin() resumes from the file when it matches the
  // stream. Incompatible with recon.keep_frame_masks (per-frame masks are
  // not serialized).
  std::string checkpoint_path;

  // Shard mode: with shard_count > 0 this worker decomposes only shard
  // shard_index (0-based) of shard_count equal slices and emits a partial
  // via RunPartial()/FinalizePartial() instead of a finalized result.
  // Incompatible with recon.keep_frame_masks. shard_count = 0 disables.
  int shard_index = 0;
  int shard_count = 0;
  // Mixed into the partial's config hash (core/partial.h ConfigHash) so a
  // reducer refuses partials built against different VB references; callers
  // fold the reference identity in here. Ignored outside shard mode except
  // by FinalizePartial().
  std::uint64_t config_salt = 0;

  // Cooperative cancellation: when non-null and the pointee becomes true
  // (e.g. from a SIGTERM handler), Run()/RunPartial() stop between frame
  // pulls and return kAborted. On the decomposition pass with a checkpoint
  // configured, the in-flight window is flushed and a checkpoint sealed
  // first, so an interrupted run wastes at most the frame being decoded -
  // not the whole resident window - and a rerun resumes bit-identically.
  // Polled with one relaxed load per pull; never written by this class.
  const std::atomic<bool>* stop = nullptr;
};

// Observability counters for the streaming run (also mirrored into
// bb.trace.v1 as stream.*, fault.*, recover.*, and shard.* counters when
// tracing is enabled).
struct StreamingStats {
  int window_capacity = 0;
  int peak_window_frames = 0;
  std::uint64_t frames_pushed = 0;
  std::uint64_t window_flushes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  bool raw_masks_cached = false;

  // Degradation accounting.
  std::uint64_t bad_frame_events = 0;  // bad pushes/pulls across all passes
  int frames_quarantined = 0;          // unique frames excluded from the run
  // Checkpoint/resume accounting.
  bool resumed = false;
  int resume_frames_done = 0;  // decomposition cursor restored from the file
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_write_failures = 0;
  // Shard accounting: the decomposition range of this run ([0, frames) for
  // a whole-stream run).
  int shard_range_begin = 0;
  int shard_range_end = 0;
};

class StreamingReconstructor {
 public:
  // `reference` and `segmenter` are borrowed and must outlive the instance.
  StreamingReconstructor(const VbReference& reference,
                         segmentation::PersonSegmenter& segmenter,
                         const StreamingOptions& opts = {});

  // Drives every pass over a rewindable source and finalizes. Bad pulls are
  // quarantined via PushBadFrame; the run fails only when the error budget
  // is exceeded (kAborted) or frame memory runs out (kResourceExhausted).
  // Refused (kFailedPrecondition) in shard mode - use RunPartial().
  Result<ReconstructionResult> Run(video::FrameSource& source);

  // Shard-mode counterpart of Run(): drives every pass and returns the
  // sealed mergeable partial for this worker's slice. Also valid outside
  // shard mode (the partial then covers the whole stream).
  Result<PartialResult> RunPartial(video::FrameSource& source);

  // Incremental protocol (Run() is a wrapper around these). For each pass
  // p in [0, TotalPasses()): BeginPass(p), push every frame in order -
  // PushFrame for a readable frame, PushBadFrame for an unreadable one -
  // then EndPass(p); then Finalize() (or FinalizePartial() in shard mode).
  void Begin(const video::StreamInfo& info);
  int TotalPasses() const;
  void BeginPass(int pass);
  // Copying push (the frame is copied into a pooled buffer on the windowed
  // pass) and zero-copy move push. Quarantined frames are skipped.
  void PushFrame(const imaging::Image& frame, int frame_index);
  void PushFrame(imaging::Image&& frame, int frame_index);
  // Records `frame_index` as unreadable (reason in `reason`) and takes this
  // pass's slot for it. First report quarantines the frame; the returned
  // status is non-OK (kAborted) once the quarantine exceeds the error
  // budget, and the run's outputs are then meaningless.
  Status PushBadFrame(int frame_index, const Status& reason);
  // Declares that frames [0, frame_index) will not be pushed on the
  // current pass because the decomposition range starts later - either a
  // resumed checkpoint already covers them or they belong to another
  // shard's slice. This is the seekable-source fast path
  // (video::FrameSource::Seek) that skips decoding the prefix entirely.
  // Only legal on the decomposition pass, before any frame of the pass was
  // pushed, and only up to the range start; the final output is
  // bit-identical to pushing (and skipping) the prefix frame by frame.
  void SkipDecomposedPrefix(int frame_index);
  void EndPass(int pass);
  ReconstructionResult Finalize();
  // Shard-mode finalization: seals this worker's accumulators, quarantine,
  // and per-range leak fractions into a mergeable partial (core/reduce.h
  // folds them). Like Finalize(), only legal after the last pass.
  PartialResult FinalizePartial();

  bool IsQuarantined(int frame_index) const;
  // Ascending frame indices currently quarantined.
  std::vector<int> QuarantinedFrames() const;

  const StreamingStats& stats() const { return stats_; }
  // Why the configured checkpoint was not resumed from (OK when it was, or
  // when none was configured / none existed yet). Valid after Begin().
  const Status& checkpoint_status() const { return checkpoint_status_; }

 private:
  // Per-thread-shard leak accumulator + reusable decomposition scratch.
  // The accumulator sums are exact (see LeakAccumulators), so the
  // shard-order reduction at Finalize() is bit-identical to a serial
  // frame-order loop no matter how many window flushes or shards
  // contributed.
  struct LeakShard {
    LeakAccumulators acc;
    FrameDecomposition scratch;
  };

  void CheckOrder(int frame_index);
  // True when the frame takes its in-order slot but must not contribute to
  // the current pass (quarantined, outside this worker's decomposition
  // range, or already covered by a checkpoint).
  bool SkipFrame(int frame_index) const;
  void PushWindowed(imaging::Image frame, int frame_index);
  void FlushWindow();
  void DecomposeWindowFrame(int window_index, int frame_index,
                            LeakShard& shard);
  void SaveCheckpointNow(int frames_done);
  // Cooperative-stop exit path: on the decomposition pass with a checkpoint
  // configured, flushes (and thereby checkpoints) the resident window so
  // the interruption wastes no decomposed work, then reports kAborted with
  // the sealed progress in the message.
  Status AbortForStop();
  void TryResumeFromCheckpoint();
  // Serial shard-order reduction of resume base + thread shards (exact).
  LeakAccumulators ReduceShards();
  Status RunPasses(video::FrameSource& source);
  void FinishRunStats();

  const VbReference& reference_;
  segmentation::PersonSegmenter& segmenter_;
  CallerMasker masker_;
  StreamingOptions opts_;

  video::StreamInfo info_;
  std::size_t pixels_ = 0;
  int analysis_passes_ = 0;
  int current_pass_ = -2;  // -2 before Begin, -1 after Begin
  int next_frame_ = 0;
  bool cache_raw_masks_ = false;

  // Degradation state: quarantine bitmap + unique count + derived budget.
  std::vector<std::uint8_t> quarantine_;
  int quarantined_count_ = 0;
  int bad_budget_ = -1;  // max allowed quarantined frames; -1 = unlimited

  // Decomposition range of this run: [shard_begin_, shard_end_) is the
  // worker's slice ([0, frames) outside shard mode); decomp_begin_ starts
  // past frames a resumed checkpoint already covers.
  int shard_begin_ = 0;
  int shard_end_ = 0;
  int decomp_begin_ = 0;

  // Resume state: frames in [shard_begin_, resume_frames_) are already
  // decomposed and their combined accumulators live in resume_base_.
  int resume_frames_ = 0;
  std::optional<LeakAccumulators> resume_base_;
  Status checkpoint_status_;

  std::optional<video::FrameWindow> window_;
  // Original frame index of each resident window slot, oldest first. With
  // quarantined or resumed frames skipped, window slots are no longer
  // contiguous in stream indices; this carries the mapping into FlushWindow.
  std::vector<int> window_ids_;
  video::BufferPool pool_;
  std::vector<imaging::Bitmap> raw_cache_;
  std::vector<LeakShard> shards_;
  ReconstructionResult result_;
  StreamingStats stats_;

  std::optional<trace::ScopedTimer> caller_timer_;
  std::optional<trace::ScopedTimer> accumulate_timer_;
};

}  // namespace bb::core
