// Streaming reconstruction core (ROADMAP: O(window) memory end-to-end).
//
// StreamingReconstructor runs the full reconstruction framework of
// reconstruction.h over a video::FrameSource without ever materializing the
// call: frame state is bounded by a FrameWindow, mask/frame buffers recycle
// through a BufferPool, and the whole-call statistics (segmenter analysis,
// caller color model, leak accumulators) are incremental with O(pixels)
// state. The batch Reconstructor::Run is a thin wrapper over this class
// (window = call length), and the two are bit-identical at any thread
// count: per-shard leak accumulators persist across window flushes and sum
// integer-valued doubles, so the reduction is exact regardless of how the
// frames were windowed or sharded.
//
// Pass protocol (TotalPasses() sequential pulls over a rewindable source):
//   passes [0, A)  - segmenter analysis passes (A = AnalysisPasses())
//   pass A         - caller statistics (segment + color histogram); raw
//                    masks are cached only when the window covers the call
//   pass A+1       - windowed decomposition + leak accumulation
// Run() drives all passes; the Begin/BeginPass/PushFrame/EndPass/Finalize
// surface is public for callers that push frames as they arrive.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/trace.h"
#include "core/reconstruction.h"
#include "imaging/image.h"
#include "video/frame_source.h"

namespace bb::core {

struct StreamingOptions {
  // Capacity of the reconstruction window in frames (>= 1) - the only
  // multi-frame frame state. Peak frame-buffer residency is bounded by this,
  // never by the call length.
  int window_frames = 64;
  ReconstructionOptions recon;
};

// Observability counters for the streaming run (also mirrored into
// bb.trace.v1 as stream.* counters when tracing is enabled).
struct StreamingStats {
  int window_capacity = 0;
  int peak_window_frames = 0;
  std::uint64_t frames_pushed = 0;
  std::uint64_t window_flushes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  bool raw_masks_cached = false;
};

class StreamingReconstructor {
 public:
  // `reference` and `segmenter` are borrowed and must outlive the instance.
  StreamingReconstructor(const VbReference& reference,
                         segmentation::PersonSegmenter& segmenter,
                         const StreamingOptions& opts = {});

  // Drives every pass over a rewindable source and finalizes.
  ReconstructionResult Run(video::FrameSource& source);

  // Incremental protocol (Run() is a wrapper around these). For each pass
  // p in [0, TotalPasses()): BeginPass(p), push every frame in order,
  // EndPass(p); then Finalize().
  void Begin(const video::StreamInfo& info);
  int TotalPasses() const;
  void BeginPass(int pass);
  // Copying push (the frame is copied into a pooled buffer on the windowed
  // pass) and zero-copy move push.
  void PushFrame(const imaging::Image& frame, int frame_index);
  void PushFrame(imaging::Image&& frame, int frame_index);
  void EndPass(int pass);
  ReconstructionResult Finalize();

  const StreamingStats& stats() const { return stats_; }

 private:
  // Per-shard leak accumulator + reusable decomposition scratch. All sums
  // are integer-valued (uint8 samples and their squares), so double
  // addition is exact and the shard-order reduction at Finalize() is
  // bit-identical to a serial frame-order loop no matter how many window
  // flushes or shards contributed.
  struct LeakShard {
    std::vector<double> sum_r, sum_g, sum_b, sum_r2, sum_g2, sum_b2;
    std::vector<int> counts;
    FrameDecomposition scratch;
  };

  void CheckOrder(int frame_index);
  void PushWindowed(imaging::Image frame);
  void FlushWindow();
  void DecomposeWindowFrame(int frame_index, LeakShard& shard);

  const VbReference& reference_;
  segmentation::PersonSegmenter& segmenter_;
  CallerMasker masker_;
  StreamingOptions opts_;

  video::StreamInfo info_;
  std::size_t pixels_ = 0;
  int analysis_passes_ = 0;
  int current_pass_ = -2;  // -2 before Begin, -1 after Begin
  int next_frame_ = 0;
  bool cache_raw_masks_ = false;

  std::optional<video::FrameWindow> window_;
  video::BufferPool pool_;
  std::vector<imaging::Bitmap> raw_cache_;
  std::vector<LeakShard> shards_;
  ReconstructionResult result_;
  StreamingStats stats_;

  std::optional<trace::ScopedTimer> caller_timer_;
  std::optional<trace::ScopedTimer> accumulate_timer_;
};

}  // namespace bb::core
