#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "core/checkpoint.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

StreamingReconstructor::StreamingReconstructor(
    const VbReference& reference, segmentation::PersonSegmenter& segmenter,
    const StreamingOptions& opts)
    : reference_(reference),
      segmenter_(segmenter),
      masker_(segmenter, opts.recon.caller),
      opts_(opts) {
  if (opts_.window_frames < 1) {
    throw std::invalid_argument("StreamingReconstructor: window_frames < 1");
  }
  if (!opts_.checkpoint_path.empty() && opts_.recon.keep_frame_masks) {
    throw std::invalid_argument(
        "StreamingReconstructor: checkpoint_path is incompatible with "
        "keep_frame_masks (per-frame masks are not serialized)");
  }
}

int StreamingReconstructor::TotalPasses() const {
  return segmenter_.AnalysisPasses() + 2;
}

StreamingReconstructor::LeakShard StreamingReconstructor::ZeroShard(
    std::size_t pixels) {
  LeakShard s;
  s.sum_r.assign(pixels, 0.0);
  s.sum_g.assign(pixels, 0.0);
  s.sum_b.assign(pixels, 0.0);
  s.sum_r2.assign(pixels, 0.0);
  s.sum_g2.assign(pixels, 0.0);
  s.sum_b2.assign(pixels, 0.0);
  s.counts.assign(pixels, 0);
  return s;
}

void StreamingReconstructor::Begin(const video::StreamInfo& info) {
  info_ = info;
  analysis_passes_ = segmenter_.AnalysisPasses();
  current_pass_ = -1;
  next_frame_ = 0;
  const int w = info.width, h = info.height;
  const int frames = info.frame_count;
  pixels_ = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);

  result_ = ReconstructionResult{};
  result_.coverage = Bitmap(w, h);
  result_.leak_counts = imaging::ImageT<int>(w, h, 0);
  result_.background = Image(w, h);
  result_.per_frame_leak_fraction.assign(static_cast<std::size_t>(frames),
                                         0.0);
  if (opts_.recon.keep_frame_masks) {
    result_.frame_masks.clear();
    result_.frame_masks.resize(static_cast<std::size_t>(frames));
  }

  cache_raw_masks_ = opts_.window_frames >= frames;
  raw_cache_.clear();
  window_.emplace(std::min(opts_.window_frames, std::max(1, frames)));
  window_ids_.clear();
  pool_ = video::BufferPool();
  shards_.clear();
  stats_ = StreamingStats{};
  stats_.window_capacity = window_->capacity();
  stats_.raw_masks_cached = cache_raw_masks_;

  quarantine_.assign(static_cast<std::size_t>(frames), 0);
  quarantined_count_ = 0;
  bad_budget_ = opts_.max_bad_frames >= 0 ? opts_.max_bad_frames : -1;
  if (opts_.max_bad_fraction >= 0.0) {
    const int by_fraction = static_cast<int>(
        std::floor(opts_.max_bad_fraction * static_cast<double>(frames)));
    bad_budget_ =
        bad_budget_ < 0 ? by_fraction : std::min(bad_budget_, by_fraction);
  }

  resume_frames_ = 0;
  resume_base_.reset();
  TryResumeFromCheckpoint();
}

void StreamingReconstructor::TryResumeFromCheckpoint() {
  checkpoint_status_ = OkStatus();
  if (opts_.checkpoint_path.empty()) return;
  Result<CheckpointState> loaded = LoadCheckpoint(opts_.checkpoint_path);
  if (!loaded.ok()) {
    // No file yet is the normal first-run case; anything else is a hostile
    // or stale checkpoint - keep the reason and start fresh.
    if (loaded.status().code() != StatusCode::kNotFound) {
      checkpoint_status_ = loaded.status();
    }
    return;
  }
  CheckpointState st = std::move(*loaded);
  const bool identity_ok =
      st.info.width == info_.width && st.info.height == info_.height &&
      st.info.frame_count == info_.frame_count &&
      std::lround(st.info.fps * 1000.0) == std::lround(info_.fps * 1000.0);
  if (!identity_ok) {
    checkpoint_status_ =
        Status(StatusCode::kFailedPrecondition,
               "checkpoint was written for a different stream "
               "(dimensions, frame count, or fps mismatch)")
            .WithContext("checkpoint " + opts_.checkpoint_path);
    return;
  }
  for (int q : st.quarantined) {
    quarantine_[static_cast<std::size_t>(q)] = 1;
  }
  quarantined_count_ = static_cast<int>(st.quarantined.size());
  stats_.frames_quarantined = quarantined_count_;
  resume_frames_ = st.frames_done;
  LeakShard base = ZeroShard(pixels_);
  base.counts = std::move(st.counts);
  base.sum_r = std::move(st.sum_r);
  base.sum_g = std::move(st.sum_g);
  base.sum_b = std::move(st.sum_b);
  base.sum_r2 = std::move(st.sum_r2);
  base.sum_g2 = std::move(st.sum_g2);
  base.sum_b2 = std::move(st.sum_b2);
  resume_base_ = std::move(base);
  result_.per_frame_leak_fraction = std::move(st.per_frame_leak_fraction);
  stats_.resumed = true;
  stats_.resume_frames_done = resume_frames_;
  if (trace::Enabled()) {
    trace::AddCounter("recover.resumed_frames",
                      static_cast<std::uint64_t>(resume_frames_));
  }
}

void StreamingReconstructor::BeginPass(int pass) {
  if (pass != current_pass_ + 1 || pass >= TotalPasses()) {
    throw std::logic_error("StreamingReconstructor: passes must run in order");
  }
  current_pass_ = pass;
  next_frame_ = 0;
  if (pass < analysis_passes_) {
    segmenter_.BeginAnalysisPass(pass, info_);
  } else if (pass == analysis_passes_) {
    masker_.BeginPrepare();
    if (cache_raw_masks_) {
      raw_cache_.assign(static_cast<std::size_t>(info_.frame_count),
                        Bitmap());
    }
    caller_timer_.emplace("reconstruct.caller_prepare");
  } else {
    accumulate_timer_.emplace("reconstruct.accumulate");
  }
}

void StreamingReconstructor::CheckOrder(int frame_index) {
  if (current_pass_ < 0) {
    throw std::logic_error("StreamingReconstructor: BeginPass not called");
  }
  if (frame_index != next_frame_ || frame_index >= info_.frame_count) {
    throw std::logic_error(
        "StreamingReconstructor: frames must be pushed in order");
  }
  ++next_frame_;
}

bool StreamingReconstructor::SkipFrame(int frame_index) const {
  if (quarantine_[static_cast<std::size_t>(frame_index)] != 0) return true;
  // Resumed frames are already decomposed into resume_base_; the cheap
  // analysis/caller passes still see them (their state is rebuilt fresh).
  return current_pass_ == analysis_passes_ + 1 &&
         frame_index < resume_frames_;
}

void StreamingReconstructor::PushFrame(const Image& frame, int frame_index) {
  CheckOrder(frame_index);
  if (SkipFrame(frame_index)) return;
  if (current_pass_ == analysis_passes_ + 1) {
    Image buffer = pool_.AcquireImage(info_.width, info_.height);
    const auto src = frame.pixels();
    const auto dst = buffer.pixels();
    std::copy(src.begin(), src.end(), dst.begin());
    PushWindowed(std::move(buffer), frame_index);
    return;
  }
  if (current_pass_ < analysis_passes_) {
    segmenter_.PushAnalysisFrame(current_pass_, frame, frame_index);
  } else {
    Bitmap raw = masker_.PushPrepare(frame, frame_index);
    if (cache_raw_masks_) {
      raw_cache_[static_cast<std::size_t>(frame_index)] = std::move(raw);
    }
  }
}

void StreamingReconstructor::PushFrame(Image&& frame, int frame_index) {
  if (current_pass_ == analysis_passes_ + 1) {
    CheckOrder(frame_index);
    if (SkipFrame(frame_index)) {
      // Recycle the caller's buffer; the frame contributes nothing.
      pool_.Release(std::move(frame));
      return;
    }
    PushWindowed(std::move(frame), frame_index);
    return;
  }
  PushFrame(static_cast<const Image&>(frame), frame_index);
}

Status StreamingReconstructor::PushBadFrame(int frame_index,
                                            const Status& reason) {
  CheckOrder(frame_index);
  ++stats_.bad_frame_events;
  if (trace::Enabled()) trace::AddCounter("fault.bad_frame_events", 1);
  if (quarantine_[static_cast<std::size_t>(frame_index)] == 0) {
    quarantine_[static_cast<std::size_t>(frame_index)] = 1;
    ++quarantined_count_;
    stats_.frames_quarantined = quarantined_count_;
    if (trace::Enabled()) trace::AddCounter("recover.frames_quarantined", 1);
  }
  if (bad_budget_ >= 0 && quarantined_count_ > bad_budget_) {
    return Status(StatusCode::kAborted,
                  "bad-frame budget exceeded: " +
                      std::to_string(quarantined_count_) + " of " +
                      std::to_string(info_.frame_count) +
                      " frames quarantined (budget " +
                      std::to_string(bad_budget_) +
                      "); last error: " + reason.ToString());
  }
  return OkStatus();
}

void StreamingReconstructor::SkipResumedPrefix(int frame_index) {
  if (current_pass_ != analysis_passes_ + 1 || next_frame_ != 0 ||
      frame_index < 0 || frame_index > resume_frames_ ||
      frame_index > info_.frame_count) {
    throw std::logic_error(
        "StreamingReconstructor: SkipResumedPrefix outside the resumed "
        "decomposition prefix");
  }
  next_frame_ = frame_index;
}

bool StreamingReconstructor::IsQuarantined(int frame_index) const {
  return frame_index >= 0 &&
         static_cast<std::size_t>(frame_index) < quarantine_.size() &&
         quarantine_[static_cast<std::size_t>(frame_index)] != 0;
}

std::vector<int> StreamingReconstructor::QuarantinedFrames() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(quarantined_count_));
  for (std::size_t i = 0; i < quarantine_.size(); ++i) {
    if (quarantine_[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

void StreamingReconstructor::PushWindowed(Image frame, int frame_index) {
  ++stats_.frames_pushed;
  window_ids_.push_back(frame_index);
  pool_.Release(window_->Push(std::move(frame)));
  if (window_->size() == window_->capacity()) FlushWindow();
}

void StreamingReconstructor::FlushWindow() {
  const int count = window_->size();
  if (count == 0) return;
  ++stats_.window_flushes;

  const int first = window_->first_index();
  const std::size_t needed =
      static_cast<std::size_t>(common::NumShards(count));
  while (shards_.size() < needed) shards_.push_back(ZeroShard(pixels_));

  // Decomposition dominates the pipeline cost; shard the resident frame
  // range across threads, each accumulating privately into a shard that
  // persists across flushes. Per-frame outputs index into preallocated
  // slots, so writes are disjoint. Window slot k holds original frame
  // window_ids_[k]; the two diverge once quarantined or resumed frames are
  // skipped.
  common::ParallelShards(
      0, count, /*grain=*/1,
      [&](int shard, std::int64_t shard_begin, std::int64_t shard_end) {
        LeakShard& a = shards_[static_cast<std::size_t>(shard)];
        for (std::int64_t k = shard_begin; k < shard_end; ++k) {
          const int wi = first + static_cast<int>(k);
          const int fi = window_ids_[static_cast<std::size_t>(k)];
          DecomposeWindowFrame(wi, fi, a);
          auto pf = window_->at(wi).pixels();
          auto pl = a.scratch.lb.pixels();
          std::size_t leaked = 0;
          for (std::size_t p = 0; p < pl.size(); ++p) {
            if (!pl[p]) continue;
            ++leaked;
            ++a.counts[p];
            a.sum_r[p] += pf[p].r;
            a.sum_g[p] += pf[p].g;
            a.sum_b[p] += pf[p].b;
            a.sum_r2[p] += static_cast<double>(pf[p].r) * pf[p].r;
            a.sum_g2[p] += static_cast<double>(pf[p].g) * pf[p].g;
            a.sum_b2[p] += static_cast<double>(pf[p].b) * pf[p].b;
          }
          result_.per_frame_leak_fraction[static_cast<std::size_t>(fi)] =
              static_cast<double>(leaked) / static_cast<double>(pl.size());
          if (opts_.recon.keep_frame_masks) {
            result_.frame_masks[static_cast<std::size_t>(fi)] =
                std::move(a.scratch);
          }
        }
      });
  window_->Clear(&pool_);
  if (!opts_.checkpoint_path.empty()) {
    // Every frame up to the newest one just decomposed is now covered by
    // the combined accumulators (quarantined frames by the saved list).
    SaveCheckpointNow(window_ids_.back() + 1);
  }
  window_ids_.clear();
}

void StreamingReconstructor::SaveCheckpointNow(int frames_done) {
  CheckpointState st;
  st.info = info_;
  st.frames_done = frames_done;
  for (int i = 0; i < info_.frame_count; ++i) {
    if (quarantine_[static_cast<std::size_t>(i)] != 0) {
      st.quarantined.push_back(i);
    }
  }
  st.counts.assign(pixels_, 0);
  st.sum_r.assign(pixels_, 0.0);
  st.sum_g.assign(pixels_, 0.0);
  st.sum_b.assign(pixels_, 0.0);
  st.sum_r2.assign(pixels_, 0.0);
  st.sum_g2.assign(pixels_, 0.0);
  st.sum_b2.assign(pixels_, 0.0);
  const auto add = [&](const LeakShard& a) {
    for (std::size_t k = 0; k < pixels_; ++k) {
      st.counts[k] += a.counts[k];
      st.sum_r[k] += a.sum_r[k];
      st.sum_g[k] += a.sum_g[k];
      st.sum_b[k] += a.sum_b[k];
      st.sum_r2[k] += a.sum_r2[k];
      st.sum_g2[k] += a.sum_g2[k];
      st.sum_b2[k] += a.sum_b2[k];
    }
  };
  if (resume_base_) add(*resume_base_);
  for (const LeakShard& a : shards_) add(a);
  st.per_frame_leak_fraction = result_.per_frame_leak_fraction;

  const Status saved = SaveCheckpoint(st, opts_.checkpoint_path);
  if (saved.ok()) {
    ++stats_.checkpoint_writes;
    if (trace::Enabled()) trace::AddCounter("recover.checkpoint_writes", 1);
  } else {
    // A failing checkpoint sink degrades resumability, not the run itself.
    ++stats_.checkpoint_write_failures;
    if (trace::Enabled()) {
      trace::AddCounter("recover.checkpoint_write_failures", 1);
    }
  }
}

void StreamingReconstructor::DecomposeWindowFrame(int window_index,
                                                  int frame_index,
                                                  LeakShard& shard) {
  const Image& frame = window_->at(window_index);
  FrameDecomposition& d = shard.scratch;
  {
    const trace::ScopedTimer timer("reconstruct.vbm");
    ComputeVbmInto(frame,
                   reference_.ImageFor(frame, frame_index, opts_.recon.vb),
                   reference_.ValidFor(frame, frame_index, opts_.recon.vb),
                   opts_.recon.vb.match_tolerance, &d.vbm);
  }
  {
    const trace::ScopedTimer timer("reconstruct.bbm");
    d.bbm = ComputeBbm(d.vbm, opts_.recon.phi);
  }
  {
    const trace::ScopedTimer timer("reconstruct.vcm");
    d.vcm = cache_raw_masks_
                ? masker_.Refine(
                      frame,
                      raw_cache_[static_cast<std::size_t>(frame_index)])
                : masker_.Vcm(frame, frame_index);
  }
  {
    const trace::ScopedTimer timer("reconstruct.lb");
    // LB = residue after removing the three components.
    if (d.lb.width() != frame.width() || d.lb.height() != frame.height()) {
      d.lb = Bitmap(frame.width(), frame.height());
    }
    auto pb = d.bbm.pixels();
    auto pc = d.vcm.pixels();
    auto pl = d.lb.pixels();
    for (std::size_t i = 0; i < pl.size(); ++i) {
      pl[i] = (!pb[i] && !pc[i]) ? imaging::kMaskSet : imaging::kMaskClear;
    }
  }
  if (trace::Enabled()) {
    // Per-stage masked-pixel volumes; summed per frame, so the totals are
    // independent of how the frame loop is sharded across threads.
    trace::AddCounter("reconstruct.frames_decomposed", 1);
    trace::AddCounter("reconstruct.pixels.vbm", imaging::CountSet(d.vbm));
    trace::AddCounter("reconstruct.pixels.bbm", imaging::CountSet(d.bbm));
    trace::AddCounter("reconstruct.pixels.vcm", imaging::CountSet(d.vcm));
    trace::AddCounter("reconstruct.pixels.lb", imaging::CountSet(d.lb));
  }
}

void StreamingReconstructor::EndPass(int pass) {
  if (pass != current_pass_) {
    throw std::logic_error("StreamingReconstructor: EndPass out of order");
  }
  if (pass < analysis_passes_) {
    segmenter_.EndAnalysisPass(pass);
  } else if (pass == analysis_passes_) {
    masker_.EndPrepare();
    caller_timer_.reset();
  } else {
    FlushWindow();
    accumulate_timer_.reset();
  }
}

ReconstructionResult StreamingReconstructor::Finalize() {
  if (current_pass_ != TotalPasses() - 1) {
    throw std::logic_error(
        "StreamingReconstructor: Finalize before the final pass");
  }
  current_pass_ = TotalPasses();  // guard against reuse without Begin()

  // Deterministic serial reduction in shard order (exact: see LeakShard).
  // The resumed base joins at the front; integer-valued addition makes the
  // order immaterial to the bits.
  const trace::ScopedTimer finalize_timer("reconstruct.finalize");
  if (resume_base_) {
    shards_.insert(shards_.begin(), std::move(*resume_base_));
    resume_base_.reset();
  }
  if (shards_.empty()) shards_.push_back(ZeroShard(pixels_));
  LeakShard& total = shards_.front();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const LeakShard& a = shards_[s];
    for (std::size_t k = 0; k < pixels_; ++k) {
      total.counts[k] += a.counts[k];
      total.sum_r[k] += a.sum_r[k];
      total.sum_g[k] += a.sum_g[k];
      total.sum_b[k] += a.sum_b[k];
      total.sum_r2[k] += a.sum_r2[k];
      total.sum_g2[k] += a.sum_g2[k];
      total.sum_b2[k] += a.sum_b2[k];
    }
  }
  {
    auto pcov = result_.coverage.pixels();
    auto pcnt = result_.leak_counts.pixels();
    for (std::size_t k = 0; k < pixels_; ++k) {
      pcnt[k] = total.counts[k];
      if (total.counts[k] > 0) pcov[k] = imaging::kMaskSet;
    }
  }

  // Finalize each pixel independently (means + the paper's color-stability
  // filter); row-parallel, disjoint writes.
  auto pbg = result_.background.pixels();
  auto pcnt = result_.leak_counts.pixels();
  auto pcov = result_.coverage.pixels();
  const int w = info_.width;
  const double max_var =
      opts_.recon.max_color_spread * opts_.recon.max_color_spread;
  common::ParallelFor(0, info_.height, /*grain=*/16, [&](std::int64_t y) {
    for (std::size_t k = static_cast<std::size_t>(y) * w,
                     row_end = k + static_cast<std::size_t>(w);
         k < row_end; ++k) {
      if (pcnt[k] == 0) continue;
      if (pcnt[k] < opts_.recon.min_leak_count) {
        pcov[k] = imaging::kMaskClear;
        pcnt[k] = 0;
        continue;
      }
      const double inv = 1.0 / pcnt[k];
      const double mr = total.sum_r[k] * inv, mg = total.sum_g[k] * inv,
                   mb = total.sum_b[k] * inv;
      if (opts_.recon.max_color_spread > 0.0 && pcnt[k] > 1) {
        const double var = std::max({total.sum_r2[k] * inv - mr * mr,
                                     total.sum_g2[k] * inv - mg * mg,
                                     total.sum_b2[k] * inv - mb * mb});
        if (var > max_var) {
          // Unstable color across observations: caller boundary, not leaked
          // background (paper sec. V-D Color Analysis).
          pcov[k] = imaging::kMaskClear;
          pcnt[k] = 0;
          continue;
        }
      }
      pbg[k] = {static_cast<std::uint8_t>(mr + 0.5),
                static_cast<std::uint8_t>(mg + 0.5),
                static_cast<std::uint8_t>(mb + 0.5)};
    }
  });

  stats_.peak_window_frames = window_->peak_size();
  stats_.pool_hits = pool_.hits();
  stats_.pool_misses = pool_.misses();
  if (trace::Enabled()) {
    trace::AddCounter("stream.window_capacity",
                      static_cast<std::uint64_t>(stats_.window_capacity));
    trace::AddCounter("stream.peak_window_frames",
                      static_cast<std::uint64_t>(stats_.peak_window_frames));
    trace::AddCounter("stream.window_flushes", stats_.window_flushes);
    trace::AddCounter("stream.frames_pushed", stats_.frames_pushed);
    trace::AddCounter("stream.pool_hits", stats_.pool_hits);
    trace::AddCounter("stream.pool_misses", stats_.pool_misses);
  }
  // A completed run supersedes its checkpoint.
  if (!opts_.checkpoint_path.empty()) {
    (void)std::remove(opts_.checkpoint_path.c_str());
  }
  return std::move(result_);
}

Result<ReconstructionResult> StreamingReconstructor::Run(
    video::FrameSource& source) {
  try {
    Begin(source.info());
    if (bad_budget_ >= 0 && quarantined_count_ > bad_budget_) {
      return Status(StatusCode::kAborted,
                    "bad-frame budget exceeded before any pull: " +
                        std::to_string(quarantined_count_) +
                        " frames quarantined by the resumed checkpoint "
                        "(budget " +
                        std::to_string(bad_budget_) + ")");
    }
    const int total_passes = TotalPasses();
    const int n = info_.frame_count;
    for (int pass = 0; pass < total_passes; ++pass) {
      source.Reset();
      BeginPass(pass);
      const bool windowed = pass == analysis_passes_ + 1;
      // Resumed-prefix fast-forward: the decomposition pass skips frames
      // the checkpoint already covers, so a seekable source (indexed .bbv,
      // in-memory stream) need not even decode them. Bit-identical to
      // pulling and discarding the prefix - skipped frames contribute
      // nothing to this pass either way.
      int start = 0;
      if (windowed && resume_frames_ > 0 && source.CanSeek()) {
        const int skip_to = std::min(resume_frames_, n);
        if (source.Seek(skip_to).ok()) {
          SkipResumedPrefix(skip_to);
          start = skip_to;
          if (trace::Enabled()) {
            trace::AddCounter("recover.seek_skipped_frames",
                              static_cast<std::uint64_t>(skip_to));
          }
        }
      }
      // Windowed pass pulls directly into pooled buffers and moves them
      // into the window (allocation-free at steady state).
      Image buffer =
          windowed ? pool_.AcquireImage(info_.width, info_.height) : Image();
      for (int i = start; i < n; ++i) {
        const video::FramePull pull = source.Pull(buffer);
        if (pull.status == video::PullStatus::kEnd) break;
        if (pull.status == video::PullStatus::kBad) {
          const Status budget = PushBadFrame(i, pull.error);
          if (!budget.ok()) return budget;
          continue;
        }
        if (windowed) {
          PushFrame(std::move(buffer), i);
          buffer = pool_.AcquireImage(info_.width, info_.height);
        } else {
          PushFrame(buffer, i);
        }
      }
      if (windowed) pool_.Release(std::move(buffer));
      EndPass(pass);
    }
    return Finalize();
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted,
                  "out of memory during streaming reconstruction");
  }
}

}  // namespace bb::core
