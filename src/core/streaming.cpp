#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "core/checkpoint.h"
#include "core/reduce.h"
#include "imaging/kernels/kernels.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

StreamingReconstructor::StreamingReconstructor(
    const VbReference& reference, segmentation::PersonSegmenter& segmenter,
    const StreamingOptions& opts)
    : reference_(reference),
      segmenter_(segmenter),
      masker_(segmenter, opts.recon.caller),
      opts_(opts) {
  if (opts_.window_frames < 1) {
    throw std::invalid_argument("StreamingReconstructor: window_frames < 1");
  }
  if (!opts_.checkpoint_path.empty() && opts_.recon.keep_frame_masks) {
    throw std::invalid_argument(
        "StreamingReconstructor: checkpoint_path is incompatible with "
        "keep_frame_masks (per-frame masks are not serialized)");
  }
  if (opts_.shard_count < 0 ||
      (opts_.shard_count > 0 &&
       (opts_.shard_index < 0 || opts_.shard_index >= opts_.shard_count))) {
    throw std::invalid_argument(
        "StreamingReconstructor: shard_index must be in [0, shard_count)");
  }
  if (opts_.shard_count > 0 && opts_.recon.keep_frame_masks) {
    throw std::invalid_argument(
        "StreamingReconstructor: shard mode is incompatible with "
        "keep_frame_masks (per-frame masks are not mergeable)");
  }
}

int StreamingReconstructor::TotalPasses() const {
  return segmenter_.AnalysisPasses() + 2;
}

void StreamingReconstructor::Begin(const video::StreamInfo& info) {
  info_ = info;
  analysis_passes_ = segmenter_.AnalysisPasses();
  current_pass_ = -1;
  next_frame_ = 0;
  const int w = info.width, h = info.height;
  const int frames = info.frame_count;
  pixels_ = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);

  result_ = ReconstructionResult{};
  result_.coverage = Bitmap(w, h);
  result_.leak_counts = imaging::ImageT<int>(w, h, 0);
  result_.background = Image(w, h);
  result_.per_frame_leak_fraction.assign(static_cast<std::size_t>(frames),
                                         0.0);
  if (opts_.recon.keep_frame_masks) {
    result_.frame_masks.clear();
    result_.frame_masks.resize(static_cast<std::size_t>(frames));
  }

  cache_raw_masks_ = opts_.window_frames >= frames;
  raw_cache_.clear();
  window_.emplace(std::min(opts_.window_frames, std::max(1, frames)));
  window_ids_.clear();
  pool_ = video::BufferPool();
  shards_.clear();
  stats_ = StreamingStats{};
  stats_.window_capacity = window_->capacity();
  stats_.raw_masks_cached = cache_raw_masks_;

  // Decomposition slice of this worker: the i-th of N equal ranges in
  // shard mode, the whole stream otherwise.
  shard_begin_ = 0;
  shard_end_ = frames;
  if (opts_.shard_count > 0) {
    shard_begin_ = static_cast<int>(static_cast<std::int64_t>(frames) *
                                    opts_.shard_index / opts_.shard_count);
    shard_end_ = static_cast<int>(static_cast<std::int64_t>(frames) *
                                  (opts_.shard_index + 1) /
                                  opts_.shard_count);
  }
  stats_.shard_range_begin = shard_begin_;
  stats_.shard_range_end = shard_end_;

  quarantine_.assign(static_cast<std::size_t>(frames), 0);
  quarantined_count_ = 0;
  bad_budget_ = opts_.max_bad_frames >= 0 ? opts_.max_bad_frames : -1;
  if (opts_.max_bad_fraction >= 0.0) {
    const int by_fraction = static_cast<int>(
        std::floor(opts_.max_bad_fraction * static_cast<double>(frames)));
    bad_budget_ =
        bad_budget_ < 0 ? by_fraction : std::min(bad_budget_, by_fraction);
  }

  resume_frames_ = 0;
  resume_base_.reset();
  TryResumeFromCheckpoint();
  decomp_begin_ = std::max(shard_begin_, resume_frames_);
}

void StreamingReconstructor::TryResumeFromCheckpoint() {
  checkpoint_status_ = OkStatus();
  if (opts_.checkpoint_path.empty()) return;
  Result<CheckpointState> loaded = LoadCheckpoint(opts_.checkpoint_path);
  if (!loaded.ok()) {
    // No file yet is the normal first-run case; anything else is a hostile
    // or stale checkpoint - keep the reason and start fresh.
    if (loaded.status().code() != StatusCode::kNotFound) {
      checkpoint_status_ = loaded.status();
    }
    return;
  }
  CheckpointState st = std::move(*loaded);
  const bool identity_ok =
      st.info.width == info_.width && st.info.height == info_.height &&
      st.info.frame_count == info_.frame_count &&
      std::lround(st.info.fps * 1000.0) == std::lround(info_.fps * 1000.0);
  if (!identity_ok) {
    checkpoint_status_ =
        Status(StatusCode::kFailedPrecondition,
               "checkpoint was written for a different stream "
               "(dimensions, frame count, or fps mismatch)")
            .WithContext("checkpoint " + opts_.checkpoint_path);
    return;
  }
  if (st.shard_begin != shard_begin_ || st.shard_end != shard_end_) {
    // Another shard's progress must never splice into this worker's
    // accumulators - the merge would silently double- or under-count.
    checkpoint_status_ =
        Status(StatusCode::kFailedPrecondition,
               "checkpoint was written for a different shard range [" +
                   std::to_string(st.shard_begin) + ", " +
                   std::to_string(st.shard_end) +
                   ") (this run decomposes [" +
                   std::to_string(shard_begin_) + ", " +
                   std::to_string(shard_end_) + "))")
            .WithContext("checkpoint " + opts_.checkpoint_path);
    return;
  }
  for (int q : st.quarantined) {
    quarantine_[static_cast<std::size_t>(q)] = 1;
  }
  quarantined_count_ = static_cast<int>(st.quarantined.size());
  stats_.frames_quarantined = quarantined_count_;
  resume_frames_ = st.frames_done;
  resume_base_ = std::move(st.acc);
  result_.per_frame_leak_fraction = std::move(st.per_frame_leak_fraction);
  stats_.resumed = true;
  stats_.resume_frames_done = resume_frames_;
  if (trace::Enabled()) {
    trace::AddCounter("recover.resumed_frames",
                      static_cast<std::uint64_t>(resume_frames_));
  }
}

void StreamingReconstructor::BeginPass(int pass) {
  if (pass != current_pass_ + 1 || pass >= TotalPasses()) {
    throw std::logic_error("StreamingReconstructor: passes must run in order");
  }
  current_pass_ = pass;
  next_frame_ = 0;
  if (pass < analysis_passes_) {
    segmenter_.BeginAnalysisPass(pass, info_);
  } else if (pass == analysis_passes_) {
    masker_.BeginPrepare();
    if (cache_raw_masks_) {
      raw_cache_.assign(static_cast<std::size_t>(info_.frame_count),
                        Bitmap());
    }
    caller_timer_.emplace("reconstruct.caller_prepare");
  } else {
    accumulate_timer_.emplace("reconstruct.accumulate");
  }
}

void StreamingReconstructor::CheckOrder(int frame_index) {
  if (current_pass_ < 0) {
    throw std::logic_error("StreamingReconstructor: BeginPass not called");
  }
  if (frame_index != next_frame_ || frame_index >= info_.frame_count) {
    throw std::logic_error(
        "StreamingReconstructor: frames must be pushed in order");
  }
  ++next_frame_;
}

bool StreamingReconstructor::SkipFrame(int frame_index) const {
  if (quarantine_[static_cast<std::size_t>(frame_index)] != 0) return true;
  // Frames outside [decomp_begin_, shard_end_) contribute nothing to the
  // decomposition pass: below decomp_begin_ they are already decomposed
  // into resume_base_ or belong to an earlier shard, at or above
  // shard_end_ they belong to a later shard. The cheap analysis/caller
  // passes still see them (their state is rebuilt fresh on every worker).
  return current_pass_ == analysis_passes_ + 1 &&
         (frame_index < decomp_begin_ || frame_index >= shard_end_);
}

void StreamingReconstructor::PushFrame(const Image& frame, int frame_index) {
  CheckOrder(frame_index);
  if (SkipFrame(frame_index)) return;
  if (current_pass_ == analysis_passes_ + 1) {
    Image buffer = pool_.AcquireImage(info_.width, info_.height);
    const auto src = frame.pixels();
    const auto dst = buffer.pixels();
    std::copy(src.begin(), src.end(), dst.begin());
    PushWindowed(std::move(buffer), frame_index);
    return;
  }
  if (current_pass_ < analysis_passes_) {
    segmenter_.PushAnalysisFrame(current_pass_, frame, frame_index);
  } else {
    Bitmap raw = masker_.PushPrepare(frame, frame_index);
    if (cache_raw_masks_) {
      raw_cache_[static_cast<std::size_t>(frame_index)] = std::move(raw);
    }
  }
}

void StreamingReconstructor::PushFrame(Image&& frame, int frame_index) {
  if (current_pass_ == analysis_passes_ + 1) {
    CheckOrder(frame_index);
    if (SkipFrame(frame_index)) {
      // Recycle the caller's buffer; the frame contributes nothing.
      pool_.Release(std::move(frame));
      return;
    }
    PushWindowed(std::move(frame), frame_index);
    return;
  }
  PushFrame(static_cast<const Image&>(frame), frame_index);
}

Status StreamingReconstructor::PushBadFrame(int frame_index,
                                            const Status& reason) {
  CheckOrder(frame_index);
  ++stats_.bad_frame_events;
  if (trace::Enabled()) trace::AddCounter("fault.bad_frame_events", 1);
  if (quarantine_[static_cast<std::size_t>(frame_index)] == 0) {
    quarantine_[static_cast<std::size_t>(frame_index)] = 1;
    ++quarantined_count_;
    stats_.frames_quarantined = quarantined_count_;
    if (trace::Enabled()) trace::AddCounter("recover.frames_quarantined", 1);
  }
  if (bad_budget_ >= 0 && quarantined_count_ > bad_budget_) {
    return Status(StatusCode::kAborted,
                  "bad-frame budget exceeded: " +
                      std::to_string(quarantined_count_) + " of " +
                      std::to_string(info_.frame_count) +
                      " frames quarantined (budget " +
                      std::to_string(bad_budget_) +
                      "); last error: " + reason.ToString());
  }
  return OkStatus();
}

void StreamingReconstructor::SkipDecomposedPrefix(int frame_index) {
  if (current_pass_ != analysis_passes_ + 1 || next_frame_ != 0 ||
      frame_index < 0 || frame_index > decomp_begin_ ||
      frame_index > info_.frame_count) {
    throw std::logic_error(
        "StreamingReconstructor: SkipDecomposedPrefix outside the skipped "
        "decomposition prefix");
  }
  next_frame_ = frame_index;
}

bool StreamingReconstructor::IsQuarantined(int frame_index) const {
  return frame_index >= 0 &&
         static_cast<std::size_t>(frame_index) < quarantine_.size() &&
         quarantine_[static_cast<std::size_t>(frame_index)] != 0;
}

std::vector<int> StreamingReconstructor::QuarantinedFrames() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(quarantined_count_));
  for (std::size_t i = 0; i < quarantine_.size(); ++i) {
    if (quarantine_[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

void StreamingReconstructor::PushWindowed(Image frame, int frame_index) {
  ++stats_.frames_pushed;
  window_ids_.push_back(frame_index);
  pool_.Release(window_->Push(std::move(frame)));
  if (window_->size() == window_->capacity()) FlushWindow();
}

void StreamingReconstructor::FlushWindow() {
  const int count = window_->size();
  if (count == 0) return;
  ++stats_.window_flushes;

  const int first = window_->first_index();
  const std::size_t needed =
      static_cast<std::size_t>(common::NumShards(count));
  while (shards_.size() < needed) {
    LeakShard fresh;
    fresh.acc.Zero(pixels_);
    shards_.push_back(std::move(fresh));
  }

  // Decomposition dominates the pipeline cost; shard the resident frame
  // range across threads, each accumulating privately into a shard that
  // persists across flushes. Per-frame outputs index into preallocated
  // slots, so writes are disjoint. Window slot k holds original frame
  // window_ids_[k]; the two diverge once quarantined or skipped frames are
  // dropped.
  common::ParallelShards(
      0, count, /*grain=*/1,
      [&](int shard, std::int64_t shard_begin, std::int64_t shard_end) {
        LeakShard& s = shards_[static_cast<std::size_t>(shard)];
        LeakAccumulators& a = s.acc;
        for (std::int64_t k = shard_begin; k < shard_end; ++k) {
          const int wi = first + static_cast<int>(k);
          const int fi = window_ids_[static_cast<std::size_t>(k)];
          DecomposeWindowFrame(wi, fi, s);
          auto pf = window_->at(wi).pixels();
          auto pl = s.scratch.lb.pixels();
          const std::size_t leaked = imaging::kernels::MaskedAccumulateRgb(
              pf, pl, a.counts, a.sum_r, a.sum_g, a.sum_b, a.sum_r2, a.sum_g2,
              a.sum_b2);
          result_.per_frame_leak_fraction[static_cast<std::size_t>(fi)] =
              static_cast<double>(leaked) / static_cast<double>(pl.size());
          if (opts_.recon.keep_frame_masks) {
            result_.frame_masks[static_cast<std::size_t>(fi)] =
                std::move(s.scratch);
          }
        }
      });
  window_->Clear(&pool_);
  if (!opts_.checkpoint_path.empty()) {
    // Every range frame up to the newest one just decomposed is now covered
    // by the combined accumulators (quarantined frames by the saved list).
    SaveCheckpointNow(window_ids_.back() + 1);
  }
  window_ids_.clear();
}

LeakAccumulators StreamingReconstructor::ReduceShards() {
  // Deterministic serial reduction in shard order (exact: the sums are
  // integer-valued, so the order is immaterial to the bits). The resumed
  // base joins at the front.
  LeakAccumulators total;
  total.Zero(pixels_);
  if (resume_base_) total.Add(*resume_base_);
  for (const LeakShard& s : shards_) total.Add(s.acc);
  return total;
}

void StreamingReconstructor::SaveCheckpointNow(int frames_done) {
  CheckpointState st;
  st.info = info_;
  st.frames_done = frames_done;
  st.shard_begin = shard_begin_;
  st.shard_end = shard_end_;
  for (int i = 0; i < info_.frame_count; ++i) {
    if (quarantine_[static_cast<std::size_t>(i)] != 0) {
      st.quarantined.push_back(i);
    }
  }
  st.acc = ReduceShards();
  st.per_frame_leak_fraction = result_.per_frame_leak_fraction;

  const Status saved = SaveCheckpoint(st, opts_.checkpoint_path);
  if (saved.ok()) {
    ++stats_.checkpoint_writes;
    if (trace::Enabled()) trace::AddCounter("recover.checkpoint_writes", 1);
  } else {
    // A failing checkpoint sink degrades resumability, not the run itself.
    ++stats_.checkpoint_write_failures;
    if (trace::Enabled()) {
      trace::AddCounter("recover.checkpoint_write_failures", 1);
    }
  }
}

void StreamingReconstructor::DecomposeWindowFrame(int window_index,
                                                  int frame_index,
                                                  LeakShard& shard) {
  const Image& frame = window_->at(window_index);
  FrameDecomposition& d = shard.scratch;
  {
    const trace::ScopedTimer timer("reconstruct.vbm");
    ComputeVbmInto(frame,
                   reference_.ImageFor(frame, frame_index, opts_.recon.vb),
                   reference_.ValidFor(frame, frame_index, opts_.recon.vb),
                   opts_.recon.vb.match_tolerance, &d.vbm);
  }
  {
    const trace::ScopedTimer timer("reconstruct.bbm");
    d.bbm = ComputeBbm(d.vbm, opts_.recon.phi);
  }
  {
    const trace::ScopedTimer timer("reconstruct.vcm");
    d.vcm = cache_raw_masks_
                ? masker_.Refine(
                      frame,
                      raw_cache_[static_cast<std::size_t>(frame_index)])
                : masker_.Vcm(frame, frame_index);
  }
  {
    const trace::ScopedTimer timer("reconstruct.lb");
    // LB = residue after removing the three components.
    if (d.lb.width() != frame.width() || d.lb.height() != frame.height()) {
      d.lb = Bitmap(frame.width(), frame.height());
    }
    imaging::kernels::MaskNor(d.bbm.pixels(), d.vcm.pixels(), d.lb.pixels());
  }
  if (trace::Enabled()) {
    // Per-stage masked-pixel volumes; summed per frame, so the totals are
    // independent of how the frame loop is sharded across threads.
    trace::AddCounter("reconstruct.frames_decomposed", 1);
    trace::AddCounter("reconstruct.pixels.vbm", imaging::CountSet(d.vbm));
    trace::AddCounter("reconstruct.pixels.bbm", imaging::CountSet(d.bbm));
    trace::AddCounter("reconstruct.pixels.vcm", imaging::CountSet(d.vcm));
    trace::AddCounter("reconstruct.pixels.lb", imaging::CountSet(d.lb));
  }
}

void StreamingReconstructor::EndPass(int pass) {
  if (pass != current_pass_) {
    throw std::logic_error("StreamingReconstructor: EndPass out of order");
  }
  if (pass < analysis_passes_) {
    segmenter_.EndAnalysisPass(pass);
  } else if (pass == analysis_passes_) {
    masker_.EndPrepare();
    caller_timer_.reset();
  } else {
    FlushWindow();
    accumulate_timer_.reset();
  }
}

void StreamingReconstructor::FinishRunStats() {
  stats_.peak_window_frames = window_->peak_size();
  stats_.pool_hits = pool_.hits();
  stats_.pool_misses = pool_.misses();
  if (trace::Enabled()) {
    trace::AddCounter("stream.window_capacity",
                      static_cast<std::uint64_t>(stats_.window_capacity));
    trace::AddCounter("stream.peak_window_frames",
                      static_cast<std::uint64_t>(stats_.peak_window_frames));
    trace::AddCounter("stream.window_flushes", stats_.window_flushes);
    trace::AddCounter("stream.frames_pushed", stats_.frames_pushed);
    trace::AddCounter("stream.pool_hits", stats_.pool_hits);
    trace::AddCounter("stream.pool_misses", stats_.pool_misses);
  }
}

ReconstructionResult StreamingReconstructor::Finalize() {
  if (opts_.shard_count > 0) {
    throw std::logic_error(
        "StreamingReconstructor: shard mode emits a mergeable partial - "
        "use FinalizePartial()");
  }
  if (current_pass_ != TotalPasses() - 1) {
    throw std::logic_error(
        "StreamingReconstructor: Finalize before the final pass");
  }
  current_pass_ = TotalPasses();  // guard against reuse without Begin()

  const trace::ScopedTimer finalize_timer("reconstruct.finalize");
  const LeakAccumulators total = ReduceShards();
  // Shared pixel finalization (core/reduce.h): the exact code path
  // ReducePartials uses, which is what makes an N-shard merge bit-identical
  // to this single-process finalize.
  FinalizeBackground(total, info_.width, info_.height,
                     opts_.recon.max_color_spread,
                     opts_.recon.min_leak_count, &result_);
  FinishRunStats();
  // A completed run supersedes its checkpoint.
  if (!opts_.checkpoint_path.empty()) {
    (void)std::remove(opts_.checkpoint_path.c_str());
  }
  return std::move(result_);
}

PartialResult StreamingReconstructor::FinalizePartial() {
  if (current_pass_ != TotalPasses() - 1) {
    throw std::logic_error(
        "StreamingReconstructor: FinalizePartial before the final pass");
  }
  current_pass_ = TotalPasses();  // guard against reuse without Begin()

  const trace::ScopedTimer finalize_timer("reconstruct.finalize");
  PartialResult partial;
  partial.info = info_;
  partial.config_hash = ConfigHash(opts_.recon, opts_.config_salt);
  partial.range_begin = shard_begin_;
  partial.range_end = shard_end_;
  partial.bad_budget = bad_budget_;
  partial.min_leak_count = opts_.recon.min_leak_count;
  partial.max_color_spread = opts_.recon.max_color_spread;
  partial.bad_frame_events = stats_.bad_frame_events;
  partial.quarantined = QuarantinedFrames();
  partial.acc = ReduceShards();
  partial.per_frame_leak_fraction.assign(
      result_.per_frame_leak_fraction.begin() + shard_begin_,
      result_.per_frame_leak_fraction.begin() + shard_end_);
  FinishRunStats();
  if (trace::Enabled()) {
    trace::AddCounter("shard.partials_emitted", 1);
    trace::AddCounter(
        "shard.range_frames",
        static_cast<std::uint64_t>(shard_end_ - shard_begin_));
  }
  // The emitted partial supersedes this worker's checkpoint.
  if (!opts_.checkpoint_path.empty()) {
    (void)std::remove(opts_.checkpoint_path.c_str());
  }
  return partial;
}

Status StreamingReconstructor::AbortForStop() {
  const bool windowed = current_pass_ == analysis_passes_ + 1;
  if (windowed && !opts_.checkpoint_path.empty()) {
    // Seal the in-flight window: FlushWindow decomposes the resident
    // frames and checkpoints past them, so nothing pushed so far is lost.
    // An empty window means the last flush's checkpoint already covers
    // every decomposed frame.
    FlushWindow();
    return Status(StatusCode::kAborted,
                  "interrupted: checkpoint sealed at frame " +
                      std::to_string(next_frame_) + " of " +
                      std::to_string(info_.frame_count));
  }
  return Status(StatusCode::kAborted,
                "interrupted on pass " + std::to_string(current_pass_) +
                    " before decomposition progress existed");
}

Status StreamingReconstructor::RunPasses(video::FrameSource& source) {
  Begin(source.info());
  if (bad_budget_ >= 0 && quarantined_count_ > bad_budget_) {
    return Status(StatusCode::kAborted,
                  "bad-frame budget exceeded before any pull: " +
                      std::to_string(quarantined_count_) +
                      " frames quarantined by the resumed checkpoint "
                      "(budget " +
                      std::to_string(bad_budget_) + ")");
  }
  const int total_passes = TotalPasses();
  const int n = info_.frame_count;
  for (int pass = 0; pass < total_passes; ++pass) {
    source.Reset();
    BeginPass(pass);
    const bool windowed = pass == analysis_passes_ + 1;
    // Decomposition-prefix fast-forward: frames below decomp_begin_
    // (resumed and/or earlier shards' slices) contribute nothing to the
    // decomposition pass, so a seekable source (indexed .bbv, in-memory
    // stream) need not even decode them; a non-seekable source falls back
    // to pulling and discarding the prefix - bit-identical either way. A
    // zero-frame prefix never touches Seek, so a shard starting at frame 0
    // of a non-seekable stream runs without error. Frames at or past this
    // worker's slice end are simply never pulled on this pass.
    int start = 0;
    int stop = n;
    if (windowed) {
      stop = shard_end_;
      if (decomp_begin_ > 0 && source.CanSeek()) {
        const int skip_to = std::min(decomp_begin_, n);
        if (source.Seek(skip_to).ok()) {
          SkipDecomposedPrefix(skip_to);
          start = skip_to;
          if (trace::Enabled()) {
            trace::AddCounter("recover.seek_skipped_frames",
                              static_cast<std::uint64_t>(skip_to));
          }
        }
      }
    }
    // Windowed pass pulls directly into pooled buffers and moves them
    // into the window (allocation-free at steady state).
    Image buffer =
        windowed ? pool_.AcquireImage(info_.width, info_.height) : Image();
    for (int i = start; i < stop; ++i) {
      if (opts_.stop != nullptr &&
          opts_.stop->load(std::memory_order_relaxed)) {
        if (windowed) pool_.Release(std::move(buffer));
        return AbortForStop();
      }
      const video::FramePull pull = source.Pull(buffer);
      if (pull.status == video::PullStatus::kEnd) break;
      if (pull.status == video::PullStatus::kBad) {
        const Status budget = PushBadFrame(i, pull.error);
        if (!budget.ok()) return budget;
        continue;
      }
      if (windowed) {
        PushFrame(std::move(buffer), i);
        buffer = pool_.AcquireImage(info_.width, info_.height);
      } else {
        PushFrame(buffer, i);
      }
    }
    if (windowed) pool_.Release(std::move(buffer));
    EndPass(pass);
  }
  return OkStatus();
}

Result<ReconstructionResult> StreamingReconstructor::Run(
    video::FrameSource& source) {
  if (opts_.shard_count > 0) {
    return Status(StatusCode::kFailedPrecondition,
                  "shard mode emits a mergeable partial - use RunPartial()");
  }
  try {
    if (Status passes = RunPasses(source); !passes.ok()) return passes;
    return Finalize();
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted,
                  "out of memory during streaming reconstruction");
  }
}

Result<PartialResult> StreamingReconstructor::RunPartial(
    video::FrameSource& source) {
  try {
    if (Status passes = RunPasses(source); !passes.ok()) return passes;
    return FinalizePartial();
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted,
                  "out of memory during streaming reconstruction");
  }
}

}  // namespace bb::core
