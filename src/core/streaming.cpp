#include "core/streaming.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

StreamingReconstructor::StreamingReconstructor(
    const VbReference& reference, segmentation::PersonSegmenter& segmenter,
    const StreamingOptions& opts)
    : reference_(reference),
      segmenter_(segmenter),
      masker_(segmenter, opts.recon.caller),
      opts_(opts) {
  if (opts_.window_frames < 1) {
    throw std::invalid_argument("StreamingReconstructor: window_frames < 1");
  }
}

int StreamingReconstructor::TotalPasses() const {
  return segmenter_.AnalysisPasses() + 2;
}

void StreamingReconstructor::Begin(const video::StreamInfo& info) {
  info_ = info;
  analysis_passes_ = segmenter_.AnalysisPasses();
  current_pass_ = -1;
  next_frame_ = 0;
  const int w = info.width, h = info.height;
  const int frames = info.frame_count;
  pixels_ = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);

  result_ = ReconstructionResult{};
  result_.coverage = Bitmap(w, h);
  result_.leak_counts = imaging::ImageT<int>(w, h, 0);
  result_.background = Image(w, h);
  result_.per_frame_leak_fraction.assign(static_cast<std::size_t>(frames),
                                         0.0);
  if (opts_.recon.keep_frame_masks) {
    result_.frame_masks.clear();
    result_.frame_masks.resize(static_cast<std::size_t>(frames));
  }

  cache_raw_masks_ = opts_.window_frames >= frames;
  raw_cache_.clear();
  window_.emplace(std::min(opts_.window_frames, std::max(1, frames)));
  pool_ = video::BufferPool();
  shards_.clear();
  stats_ = StreamingStats{};
  stats_.window_capacity = window_->capacity();
  stats_.raw_masks_cached = cache_raw_masks_;
}

void StreamingReconstructor::BeginPass(int pass) {
  if (pass != current_pass_ + 1 || pass >= TotalPasses()) {
    throw std::logic_error("StreamingReconstructor: passes must run in order");
  }
  current_pass_ = pass;
  next_frame_ = 0;
  if (pass < analysis_passes_) {
    segmenter_.BeginAnalysisPass(pass, info_);
  } else if (pass == analysis_passes_) {
    masker_.BeginPrepare();
    if (cache_raw_masks_) {
      raw_cache_.assign(static_cast<std::size_t>(info_.frame_count),
                        Bitmap());
    }
    caller_timer_.emplace("reconstruct.caller_prepare");
  } else {
    accumulate_timer_.emplace("reconstruct.accumulate");
  }
}

void StreamingReconstructor::CheckOrder(int frame_index) {
  if (current_pass_ < 0) {
    throw std::logic_error("StreamingReconstructor: BeginPass not called");
  }
  if (frame_index != next_frame_ || frame_index >= info_.frame_count) {
    throw std::logic_error(
        "StreamingReconstructor: frames must be pushed in order");
  }
  ++next_frame_;
}

void StreamingReconstructor::PushFrame(const Image& frame, int frame_index) {
  if (current_pass_ == analysis_passes_ + 1) {
    CheckOrder(frame_index);
    Image buffer = pool_.AcquireImage(info_.width, info_.height);
    const auto src = frame.pixels();
    const auto dst = buffer.pixels();
    std::copy(src.begin(), src.end(), dst.begin());
    PushWindowed(std::move(buffer));
    return;
  }
  CheckOrder(frame_index);
  if (current_pass_ < analysis_passes_) {
    segmenter_.PushAnalysisFrame(current_pass_, frame, frame_index);
  } else {
    Bitmap raw = masker_.PushPrepare(frame, frame_index);
    if (cache_raw_masks_) {
      raw_cache_[static_cast<std::size_t>(frame_index)] = std::move(raw);
    }
  }
}

void StreamingReconstructor::PushFrame(Image&& frame, int frame_index) {
  if (current_pass_ == analysis_passes_ + 1) {
    CheckOrder(frame_index);
    PushWindowed(std::move(frame));
    return;
  }
  PushFrame(static_cast<const Image&>(frame), frame_index);
}

void StreamingReconstructor::PushWindowed(Image frame) {
  ++stats_.frames_pushed;
  pool_.Release(window_->Push(std::move(frame)));
  if (window_->size() == window_->capacity()) FlushWindow();
}

void StreamingReconstructor::FlushWindow() {
  const int count = window_->size();
  if (count == 0) return;
  ++stats_.window_flushes;

  const int first = window_->first_index();
  const std::size_t needed =
      static_cast<std::size_t>(common::NumShards(count));
  while (shards_.size() < needed) {
    LeakShard s;
    s.sum_r.assign(pixels_, 0.0);
    s.sum_g.assign(pixels_, 0.0);
    s.sum_b.assign(pixels_, 0.0);
    s.sum_r2.assign(pixels_, 0.0);
    s.sum_g2.assign(pixels_, 0.0);
    s.sum_b2.assign(pixels_, 0.0);
    s.counts.assign(pixels_, 0);
    shards_.push_back(std::move(s));
  }

  // Decomposition dominates the pipeline cost; shard the resident frame
  // range across threads, each accumulating privately into a shard that
  // persists across flushes. Per-frame outputs index into preallocated
  // slots, so writes are disjoint.
  common::ParallelShards(
      0, count, /*grain=*/1,
      [&](int shard, std::int64_t shard_begin, std::int64_t shard_end) {
        LeakShard& a = shards_[static_cast<std::size_t>(shard)];
        for (std::int64_t k = shard_begin; k < shard_end; ++k) {
          const int i = first + static_cast<int>(k);
          DecomposeWindowFrame(i, a);
          auto pf = window_->at(i).pixels();
          auto pl = a.scratch.lb.pixels();
          std::size_t leaked = 0;
          for (std::size_t p = 0; p < pl.size(); ++p) {
            if (!pl[p]) continue;
            ++leaked;
            ++a.counts[p];
            a.sum_r[p] += pf[p].r;
            a.sum_g[p] += pf[p].g;
            a.sum_b[p] += pf[p].b;
            a.sum_r2[p] += static_cast<double>(pf[p].r) * pf[p].r;
            a.sum_g2[p] += static_cast<double>(pf[p].g) * pf[p].g;
            a.sum_b2[p] += static_cast<double>(pf[p].b) * pf[p].b;
          }
          result_.per_frame_leak_fraction[static_cast<std::size_t>(i)] =
              static_cast<double>(leaked) / static_cast<double>(pl.size());
          if (opts_.recon.keep_frame_masks) {
            result_.frame_masks[static_cast<std::size_t>(i)] =
                std::move(a.scratch);
          }
        }
      });
  window_->Clear(&pool_);
}

void StreamingReconstructor::DecomposeWindowFrame(int frame_index,
                                                  LeakShard& shard) {
  const Image& frame = window_->at(frame_index);
  FrameDecomposition& d = shard.scratch;
  {
    const trace::ScopedTimer timer("reconstruct.vbm");
    ComputeVbmInto(frame,
                   reference_.ImageFor(frame, frame_index, opts_.recon.vb),
                   reference_.ValidFor(frame, frame_index, opts_.recon.vb),
                   opts_.recon.vb.match_tolerance, &d.vbm);
  }
  {
    const trace::ScopedTimer timer("reconstruct.bbm");
    d.bbm = ComputeBbm(d.vbm, opts_.recon.phi);
  }
  {
    const trace::ScopedTimer timer("reconstruct.vcm");
    d.vcm = cache_raw_masks_
                ? masker_.Refine(
                      frame,
                      raw_cache_[static_cast<std::size_t>(frame_index)])
                : masker_.Vcm(frame, frame_index);
  }
  {
    const trace::ScopedTimer timer("reconstruct.lb");
    // LB = residue after removing the three components.
    if (d.lb.width() != frame.width() || d.lb.height() != frame.height()) {
      d.lb = Bitmap(frame.width(), frame.height());
    }
    auto pb = d.bbm.pixels();
    auto pc = d.vcm.pixels();
    auto pl = d.lb.pixels();
    for (std::size_t i = 0; i < pl.size(); ++i) {
      pl[i] = (!pb[i] && !pc[i]) ? imaging::kMaskSet : imaging::kMaskClear;
    }
  }
  if (trace::Enabled()) {
    // Per-stage masked-pixel volumes; summed per frame, so the totals are
    // independent of how the frame loop is sharded across threads.
    trace::AddCounter("reconstruct.frames_decomposed", 1);
    trace::AddCounter("reconstruct.pixels.vbm", imaging::CountSet(d.vbm));
    trace::AddCounter("reconstruct.pixels.bbm", imaging::CountSet(d.bbm));
    trace::AddCounter("reconstruct.pixels.vcm", imaging::CountSet(d.vcm));
    trace::AddCounter("reconstruct.pixels.lb", imaging::CountSet(d.lb));
  }
}

void StreamingReconstructor::EndPass(int pass) {
  if (pass != current_pass_) {
    throw std::logic_error("StreamingReconstructor: EndPass out of order");
  }
  if (pass < analysis_passes_) {
    segmenter_.EndAnalysisPass(pass);
  } else if (pass == analysis_passes_) {
    masker_.EndPrepare();
    caller_timer_.reset();
  } else {
    FlushWindow();
    accumulate_timer_.reset();
  }
}

ReconstructionResult StreamingReconstructor::Finalize() {
  if (current_pass_ != TotalPasses() - 1) {
    throw std::logic_error(
        "StreamingReconstructor: Finalize before the final pass");
  }
  current_pass_ = TotalPasses();  // guard against reuse without Begin()

  // Deterministic serial reduction in shard order (exact: see LeakShard).
  const trace::ScopedTimer finalize_timer("reconstruct.finalize");
  if (shards_.empty()) {
    LeakShard s;
    s.sum_r.assign(pixels_, 0.0);
    s.sum_g.assign(pixels_, 0.0);
    s.sum_b.assign(pixels_, 0.0);
    s.sum_r2.assign(pixels_, 0.0);
    s.sum_g2.assign(pixels_, 0.0);
    s.sum_b2.assign(pixels_, 0.0);
    s.counts.assign(pixels_, 0);
    shards_.push_back(std::move(s));
  }
  LeakShard& total = shards_.front();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const LeakShard& a = shards_[s];
    for (std::size_t k = 0; k < pixels_; ++k) {
      total.counts[k] += a.counts[k];
      total.sum_r[k] += a.sum_r[k];
      total.sum_g[k] += a.sum_g[k];
      total.sum_b[k] += a.sum_b[k];
      total.sum_r2[k] += a.sum_r2[k];
      total.sum_g2[k] += a.sum_g2[k];
      total.sum_b2[k] += a.sum_b2[k];
    }
  }
  {
    auto pcov = result_.coverage.pixels();
    auto pcnt = result_.leak_counts.pixels();
    for (std::size_t k = 0; k < pixels_; ++k) {
      pcnt[k] = total.counts[k];
      if (total.counts[k] > 0) pcov[k] = imaging::kMaskSet;
    }
  }

  // Finalize each pixel independently (means + the paper's color-stability
  // filter); row-parallel, disjoint writes.
  auto pbg = result_.background.pixels();
  auto pcnt = result_.leak_counts.pixels();
  auto pcov = result_.coverage.pixels();
  const int w = info_.width;
  const double max_var =
      opts_.recon.max_color_spread * opts_.recon.max_color_spread;
  common::ParallelFor(0, info_.height, /*grain=*/16, [&](std::int64_t y) {
    for (std::size_t k = static_cast<std::size_t>(y) * w,
                     row_end = k + static_cast<std::size_t>(w);
         k < row_end; ++k) {
      if (pcnt[k] == 0) continue;
      if (pcnt[k] < opts_.recon.min_leak_count) {
        pcov[k] = imaging::kMaskClear;
        pcnt[k] = 0;
        continue;
      }
      const double inv = 1.0 / pcnt[k];
      const double mr = total.sum_r[k] * inv, mg = total.sum_g[k] * inv,
                   mb = total.sum_b[k] * inv;
      if (opts_.recon.max_color_spread > 0.0 && pcnt[k] > 1) {
        const double var = std::max({total.sum_r2[k] * inv - mr * mr,
                                     total.sum_g2[k] * inv - mg * mg,
                                     total.sum_b2[k] * inv - mb * mb});
        if (var > max_var) {
          // Unstable color across observations: caller boundary, not leaked
          // background (paper sec. V-D Color Analysis).
          pcov[k] = imaging::kMaskClear;
          pcnt[k] = 0;
          continue;
        }
      }
      pbg[k] = {static_cast<std::uint8_t>(mr + 0.5),
                static_cast<std::uint8_t>(mg + 0.5),
                static_cast<std::uint8_t>(mb + 0.5)};
    }
  });

  stats_.peak_window_frames = window_->peak_size();
  stats_.pool_hits = pool_.hits();
  stats_.pool_misses = pool_.misses();
  if (trace::Enabled()) {
    trace::AddCounter("stream.window_capacity",
                      static_cast<std::uint64_t>(stats_.window_capacity));
    trace::AddCounter("stream.peak_window_frames",
                      static_cast<std::uint64_t>(stats_.peak_window_frames));
    trace::AddCounter("stream.window_flushes", stats_.window_flushes);
    trace::AddCounter("stream.frames_pushed", stats_.frames_pushed);
    trace::AddCounter("stream.pool_hits", stats_.pool_hits);
    trace::AddCounter("stream.pool_misses", stats_.pool_misses);
  }
  return std::move(result_);
}

ReconstructionResult StreamingReconstructor::Run(video::FrameSource& source) {
  Begin(source.info());
  const int total_passes = TotalPasses();
  const int n = info_.frame_count;
  for (int pass = 0; pass < total_passes; ++pass) {
    source.Reset();
    BeginPass(pass);
    if (pass == analysis_passes_ + 1) {
      // Windowed pass: pull directly into pooled buffers and move them into
      // the window (allocation-free at steady state).
      Image buffer = pool_.AcquireImage(info_.width, info_.height);
      int i = 0;
      while (i < n && source.Next(buffer)) {
        PushFrame(std::move(buffer), i);
        ++i;
        buffer = pool_.AcquireImage(info_.width, info_.height);
      }
      pool_.Release(std::move(buffer));
    } else {
      Image buffer;
      int i = 0;
      while (i < n && source.Next(buffer)) {
        PushFrame(buffer, i);
        ++i;
      }
    }
    EndPass(pass);
  }
  return Finalize();
}

}  // namespace bb::core
