// Blending blur masking (paper sec. V-C).
//
// The blending ring BB sits between the virtual background and the
// foreground; its pixels are mixtures of both and match neither. The paper
// marks as "blending blur" every pixel within radius phi of a VBM pixel
// (phi = 20 at webcam resolution; an adversary calibrates phi offline by
// applying the target software to static probe images).
#pragma once

#include "imaging/image.h"

namespace bb::core {

// Default phi for the simulation's 144p frames (the paper's phi = 20 at
// ~720p scales to ~4 here; bench_phi sweeps this).
inline constexpr double kDefaultPhi = 4.0;

// BBM: every pixel within Euclidean distance `phi` of a set VBM pixel
// (includes the VBM pixels themselves; the framework removes the union of
// all masks, so the overlap is harmless).
imaging::Bitmap ComputeBbm(const imaging::Bitmap& vbm, double phi);

// Offline phi calibration (paper sec. VIII-C, "Impact of Different
// Framework Parameters"): the adversary applies the target software to a
// static probe frame (scene + motionless figure) and measures the maximum
// distance from the VB-matching region at which pixels differ from both the
// raw VB and the raw (pre-VB) frame - i.e. the observed blur depth.
double CalibratePhi(const imaging::Image& probe_output,
                    const imaging::Image& virtual_image,
                    const imaging::Image& raw_frame, int tolerance);

}  // namespace bb::core
