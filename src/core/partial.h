// Mergeable partial results for sharded reconstruction (DESIGN.md
// section 14).
//
// A BBPR partial is the sealed output of one shard worker: the leak
// accumulators, quarantine set, and per-frame leak fractions it produced
// while decomposing its frame range [range_begin, range_end) of a stream,
// plus everything a reducer needs to refuse a wrong merge - the stream
// identity, a config hash over every output-relevant reconstruction
// option, the resolved error budget, and the finalize parameters
// (min_leak_count / max_color_spread) stored explicitly so `backbuster
// reduce` is self-contained. Because every accumulator sum is
// integer-valued (uint8 samples and their squares added in doubles),
// merging partials is exact and arrival-order-invariant, and K merged
// partials finalize to the same bits as one uninterrupted run
// (core/reduce.h holds the merger and the shared pixel finalization).
//
// File format "BBPR" version 1 (integers little-endian; doubles as
// IEEE-754 bit patterns):
//
//   magic        "BBPR"                            bytes 0-3
//   version      u32 = 1                           bytes 4-7
//   width        u32  -+                           bytes 8-11
//   height       u32   | stream identity; the      bytes 12-15
//   frames       u32   | reducer refuses partials  bytes 16-19
//   fps_mhz      u32  -+ of different streams      bytes 20-23
//   config_hash  u64   reconstruction-option hash  bytes 24-31
//   range_begin  u32  -+ decomposed frame range    bytes 32-35
//   range_end    u32  -+ [begin, end)              bytes 36-39
//   bad_budget   u32   two's-complement i32;       bytes 40-43
//                      0xFFFFFFFF = unlimited
//   min_leak     u32   finalize: min_leak_count    bytes 44-47
//   color_spread f64   finalize: max_color_spread  bytes 48-55
//   bad_events   u64   bad pushes/pulls, all passes bytes 56-63
//   quarantine   u32 count, then count ascending u32 frame indices
//                (full-stream indices - quarantine is a whole-run fact)
//   pixels       u64   width*height (redundant; checked)
//   counts       pixels * u64
//   sum_r/g/b, sum_r2/g2/b2   pixels * f64 each, in that order
//   per_frame    (range_end - range_begin) * f64   leak fraction per
//                frame of the range, in frame order
//   checksum     u64   FNV-1a 64 over every preceding byte
//
// Writes are crash-consistent (write-temp-then-rename, like BBCK). Loads
// treat the file as hostile input: the checksum is verified before any
// field is trusted, and every rejection names the offending byte range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/reconstruction.h"
#include "video/frame_source.h"

namespace bb::core {

// Per-pixel leak evidence: observation counts plus per-channel sums of the
// observed values and their squares. All sums are integer-valued (uint8
// samples and their squares added in doubles), so Add() is exact and a
// sequence of Add() calls produces the same bits in any order.
struct LeakAccumulators {
  std::vector<int> counts;
  std::vector<double> sum_r, sum_g, sum_b;
  std::vector<double> sum_r2, sum_g2, sum_b2;

  std::size_t pixels() const { return counts.size(); }
  void Zero(std::size_t pixels);
  // Element-wise `this += other`; the accumulators must be the same size.
  void Add(const LeakAccumulators& other);
};

struct PartialResult {
  video::StreamInfo info;
  std::uint64_t config_hash = 0;
  int range_begin = 0;  // decomposed frame range [range_begin, range_end)
  int range_end = 0;
  int bad_budget = -1;  // resolved error budget; -1 = unlimited
  int min_leak_count = 0;
  double max_color_spread = 0.0;
  std::uint64_t bad_frame_events = 0;
  std::vector<int> quarantined;  // ascending full-stream frame indices
  LeakAccumulators acc;
  // Leak fraction of each frame in [range_begin, range_end), in order.
  std::vector<double> per_frame_leak_fraction;
};

// Hash over every reconstruction option that can change the merged output,
// mixed with `salt` (callers fold in the VB reference identity so partials
// built against different references never merge). Not a general-purpose
// config digest: options that cannot perturb the output (keep_frame_masks)
// are deliberately excluded.
std::uint64_t ConfigHash(const ReconstructionOptions& opts,
                         std::uint64_t salt);

// Serializes `partial` to `path` via write-temp-then-rename.
Status SavePartial(const PartialResult& partial, const std::string& path);

// Parses and validates `path`. kNotFound when the file does not exist;
// kDataLoss / kFailedPrecondition on corrupt or version-mismatched
// contents, with the offending byte range named in the message.
Result<PartialResult> LoadPartial(const std::string& path);

}  // namespace bb::core
