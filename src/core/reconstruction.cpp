#include "core/reconstruction.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/trace.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

Reconstructor::Reconstructor(const VbReference& reference,
                             segmentation::PersonSegmenter& segmenter,
                             const ReconstructionOptions& opts)
    : reference_(reference),
      caller_masker_(segmenter, opts.caller),
      opts_(opts) {}

void Reconstructor::PrepareCaller(const video::VideoStream& call) {
  const trace::ScopedTimer timer("reconstruct.caller_prepare");
  caller_masker_.Prepare(call);
  caller_prepared_ = true;
}

FrameDecomposition Reconstructor::Decompose(const video::VideoStream& call,
                                            int frame_index) const {
  const Image& frame = call.frame(frame_index);
  FrameDecomposition d;
  {
    const trace::ScopedTimer timer("reconstruct.vbm");
    d.vbm = ComputeVbm(frame,
                       reference_.ImageFor(frame, frame_index, opts_.vb),
                       reference_.ValidFor(frame, frame_index, opts_.vb),
                       opts_.vb.match_tolerance);
  }
  {
    const trace::ScopedTimer timer("reconstruct.bbm");
    d.bbm = ComputeBbm(d.vbm, opts_.phi);
  }
  {
    const trace::ScopedTimer timer("reconstruct.vcm");
    d.vcm = caller_masker_.Vcm(call, frame_index);
  }
  {
    const trace::ScopedTimer timer("reconstruct.lb");
    // LB = residue after removing the three components.
    d.lb = Bitmap(frame.width(), frame.height());
    auto pb = d.bbm.pixels();
    auto pc = d.vcm.pixels();
    auto pl = d.lb.pixels();
    for (std::size_t i = 0; i < pl.size(); ++i) {
      pl[i] = (!pb[i] && !pc[i]) ? imaging::kMaskSet : imaging::kMaskClear;
    }
  }
  if (trace::Enabled()) {
    // Per-stage masked-pixel volumes; summed per frame, so the totals are
    // independent of how the frame loop is sharded across threads.
    trace::AddCounter("reconstruct.frames_decomposed", 1);
    trace::AddCounter("reconstruct.pixels.vbm", imaging::CountSet(d.vbm));
    trace::AddCounter("reconstruct.pixels.bbm", imaging::CountSet(d.bbm));
    trace::AddCounter("reconstruct.pixels.vcm", imaging::CountSet(d.vcm));
    trace::AddCounter("reconstruct.pixels.lb", imaging::CountSet(d.lb));
  }
  return d;
}

namespace {

// Per-shard accumulator for the frame loop. All sums are integer-valued
// (uint8 samples and their squares), so double addition is exact and the
// shard-order reduction is bit-identical to the serial frame-order loop
// regardless of how many shards the range was split into.
struct LeakAccumulator {
  std::vector<double> sum_r, sum_g, sum_b, sum_r2, sum_g2, sum_b2;
  std::vector<int> counts;

  explicit LeakAccumulator(std::size_t pixels)
      : sum_r(pixels, 0.0), sum_g(pixels, 0.0), sum_b(pixels, 0.0),
        sum_r2(pixels, 0.0), sum_g2(pixels, 0.0), sum_b2(pixels, 0.0),
        counts(pixels, 0) {}
};

}  // namespace

ReconstructionResult Reconstructor::Run(const video::VideoStream& call) {
  const trace::ScopedTimer run_timer("reconstruct.run");
  PrepareCaller(call);

  const int w = call.width(), h = call.height();
  const int frames = call.frame_count();
  ReconstructionResult result;
  result.coverage = Bitmap(w, h);
  result.leak_counts = imaging::ImageT<int>(w, h, 0);
  result.background = Image(w, h);
  result.per_frame_leak_fraction.assign(static_cast<std::size_t>(frames),
                                        0.0);
  if (opts_.keep_frame_masks) {
    result.frame_masks.resize(static_cast<std::size_t>(frames));
  }

  const std::size_t pixels = static_cast<std::size_t>(w) * h;
  const int shards = common::NumShards(frames);
  std::vector<LeakAccumulator> acc(static_cast<std::size_t>(shards),
                                   LeakAccumulator(pixels));

  // Frame decomposition dominates the pipeline cost; shard the frame range
  // across threads, each accumulating privately. Per-frame outputs index
  // into preallocated slots, so writes are disjoint.
  {
    const trace::ScopedTimer accumulate_timer("reconstruct.accumulate");
    common::ParallelShards(
        0, frames, /*grain=*/1,
        [&](int shard, std::int64_t shard_begin, std::int64_t shard_end) {
          LeakAccumulator& a = acc[static_cast<std::size_t>(shard)];
          for (std::int64_t i = shard_begin; i < shard_end; ++i) {
            FrameDecomposition d = Decompose(call, static_cast<int>(i));
            auto pf = call.frame(static_cast<int>(i)).pixels();
            auto pl = d.lb.pixels();
            std::size_t leaked = 0;
            for (std::size_t k = 0; k < pl.size(); ++k) {
              if (!pl[k]) continue;
              ++leaked;
              ++a.counts[k];
              a.sum_r[k] += pf[k].r;
              a.sum_g[k] += pf[k].g;
              a.sum_b[k] += pf[k].b;
              a.sum_r2[k] += static_cast<double>(pf[k].r) * pf[k].r;
              a.sum_g2[k] += static_cast<double>(pf[k].g) * pf[k].g;
              a.sum_b2[k] += static_cast<double>(pf[k].b) * pf[k].b;
            }
            result.per_frame_leak_fraction[static_cast<std::size_t>(i)] =
                static_cast<double>(leaked) / static_cast<double>(pl.size());
            if (opts_.keep_frame_masks) {
              result.frame_masks[static_cast<std::size_t>(i)] = std::move(d);
            }
          }
        });
  }

  // Deterministic serial reduction in shard order (exact: see
  // LeakAccumulator).
  const trace::ScopedTimer finalize_timer("reconstruct.finalize");
  LeakAccumulator& total = acc.front();
  for (int s = 1; s < shards; ++s) {
    const LeakAccumulator& a = acc[static_cast<std::size_t>(s)];
    for (std::size_t k = 0; k < pixels; ++k) {
      total.counts[k] += a.counts[k];
      total.sum_r[k] += a.sum_r[k];
      total.sum_g[k] += a.sum_g[k];
      total.sum_b[k] += a.sum_b[k];
      total.sum_r2[k] += a.sum_r2[k];
      total.sum_g2[k] += a.sum_g2[k];
      total.sum_b2[k] += a.sum_b2[k];
    }
  }
  {
    auto pcov = result.coverage.pixels();
    auto pcnt = result.leak_counts.pixels();
    for (std::size_t k = 0; k < pixels; ++k) {
      pcnt[k] = total.counts[k];
      if (total.counts[k] > 0) pcov[k] = imaging::kMaskSet;
    }
  }

  // Finalize each pixel independently (means + the paper's color-stability
  // filter); row-parallel, disjoint writes.
  auto pbg = result.background.pixels();
  auto pcnt = result.leak_counts.pixels();
  auto pcov = result.coverage.pixels();
  const double max_var = opts_.max_color_spread * opts_.max_color_spread;
  common::ParallelFor(0, h, /*grain=*/16, [&](std::int64_t y) {
    for (std::size_t k = static_cast<std::size_t>(y) * w,
                     row_end = k + static_cast<std::size_t>(w);
         k < row_end; ++k) {
      if (pcnt[k] == 0) continue;
      if (pcnt[k] < opts_.min_leak_count) {
        pcov[k] = imaging::kMaskClear;
        pcnt[k] = 0;
        continue;
      }
      const double inv = 1.0 / pcnt[k];
      const double mr = total.sum_r[k] * inv, mg = total.sum_g[k] * inv,
                   mb = total.sum_b[k] * inv;
      if (opts_.max_color_spread > 0.0 && pcnt[k] > 1) {
        const double var = std::max({total.sum_r2[k] * inv - mr * mr,
                                     total.sum_g2[k] * inv - mg * mg,
                                     total.sum_b2[k] * inv - mb * mb});
        if (var > max_var) {
          // Unstable color across observations: caller boundary, not leaked
          // background (paper sec. V-D Color Analysis).
          pcov[k] = imaging::kMaskClear;
          pcnt[k] = 0;
          continue;
        }
      }
      pbg[k] = {static_cast<std::uint8_t>(mr + 0.5),
                static_cast<std::uint8_t>(mg + 0.5),
                static_cast<std::uint8_t>(mb + 0.5)};
    }
  });
  return result;
}

}  // namespace bb::core
