#include "core/reconstruction.h"

#include <algorithm>

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

Reconstructor::Reconstructor(const VbReference& reference,
                             segmentation::PersonSegmenter& segmenter,
                             const ReconstructionOptions& opts)
    : reference_(reference),
      caller_masker_(segmenter, opts.caller),
      opts_(opts) {}

void Reconstructor::PrepareCaller(const video::VideoStream& call) {
  caller_masker_.Prepare(call);
  caller_prepared_ = true;
}

FrameDecomposition Reconstructor::Decompose(const video::VideoStream& call,
                                            int frame_index) const {
  const Image& frame = call.frame(frame_index);
  FrameDecomposition d;
  d.vbm = ComputeVbm(frame,
                     reference_.ImageFor(frame, frame_index, opts_.vb),
                     reference_.ValidFor(frame, frame_index, opts_.vb),
                     opts_.vb.match_tolerance);
  d.bbm = ComputeBbm(d.vbm, opts_.phi);
  d.vcm = caller_masker_.Vcm(call, frame_index);
  // LB = residue after removing the three components.
  d.lb = Bitmap(frame.width(), frame.height());
  auto pb = d.bbm.pixels();
  auto pc = d.vcm.pixels();
  auto pl = d.lb.pixels();
  for (std::size_t i = 0; i < pl.size(); ++i) {
    pl[i] = (!pb[i] && !pc[i]) ? imaging::kMaskSet : imaging::kMaskClear;
  }
  return d;
}

ReconstructionResult Reconstructor::Run(const video::VideoStream& call) {
  PrepareCaller(call);

  const int w = call.width(), h = call.height();
  ReconstructionResult result;
  result.coverage = Bitmap(w, h);
  result.leak_counts = imaging::ImageT<int>(w, h, 0);
  result.background = Image(w, h);

  std::vector<double> sum_r(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<double> sum_g(sum_r.size(), 0.0);
  std::vector<double> sum_b(sum_r.size(), 0.0);
  std::vector<double> sum_r2(sum_r.size(), 0.0);
  std::vector<double> sum_g2(sum_r.size(), 0.0);
  std::vector<double> sum_b2(sum_r.size(), 0.0);

  for (int i = 0; i < call.frame_count(); ++i) {
    FrameDecomposition d = Decompose(call, i);
    const Image& frame = call.frame(i);
    auto pf = frame.pixels();
    auto pl = d.lb.pixels();
    auto pcov = result.coverage.pixels();
    auto pcnt = result.leak_counts.pixels();
    std::size_t leaked = 0;
    for (std::size_t k = 0; k < pl.size(); ++k) {
      if (!pl[k]) continue;
      ++leaked;
      pcov[k] = imaging::kMaskSet;
      ++pcnt[k];
      sum_r[k] += pf[k].r;
      sum_g[k] += pf[k].g;
      sum_b[k] += pf[k].b;
      sum_r2[k] += static_cast<double>(pf[k].r) * pf[k].r;
      sum_g2[k] += static_cast<double>(pf[k].g) * pf[k].g;
      sum_b2[k] += static_cast<double>(pf[k].b) * pf[k].b;
    }
    result.per_frame_leak_fraction.push_back(
        static_cast<double>(leaked) / static_cast<double>(pl.size()));
    if (opts_.keep_frame_masks) result.frame_masks.push_back(std::move(d));
  }

  auto pbg = result.background.pixels();
  auto pcnt = result.leak_counts.pixels();
  auto pcov = result.coverage.pixels();
  const double max_var = opts_.max_color_spread * opts_.max_color_spread;
  for (std::size_t k = 0; k < pbg.size(); ++k) {
    if (pcnt[k] == 0) continue;
    if (pcnt[k] < opts_.min_leak_count) {
      pcov[k] = imaging::kMaskClear;
      pcnt[k] = 0;
      continue;
    }
    const double inv = 1.0 / pcnt[k];
    const double mr = sum_r[k] * inv, mg = sum_g[k] * inv,
                 mb = sum_b[k] * inv;
    if (opts_.max_color_spread > 0.0 && pcnt[k] > 1) {
      const double var = std::max({sum_r2[k] * inv - mr * mr,
                                   sum_g2[k] * inv - mg * mg,
                                   sum_b2[k] * inv - mb * mb});
      if (var > max_var) {
        // Unstable color across observations: caller boundary, not leaked
        // background (paper sec. V-D Color Analysis).
        pcov[k] = imaging::kMaskClear;
        pcnt[k] = 0;
        continue;
      }
    }
    pbg[k] = {static_cast<std::uint8_t>(mr + 0.5),
              static_cast<std::uint8_t>(mg + 0.5),
              static_cast<std::uint8_t>(mb + 0.5)};
  }
  return result;
}

}  // namespace bb::core
