#include "core/reconstruction.h"

#include <algorithm>

#include "common/trace.h"
#include "core/streaming.h"
#include "imaging/kernels/kernels.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

Reconstructor::Reconstructor(const VbReference& reference,
                             segmentation::PersonSegmenter& segmenter,
                             const ReconstructionOptions& opts)
    : reference_(reference),
      segmenter_(segmenter),
      caller_masker_(segmenter, opts.caller),
      opts_(opts) {}

void Reconstructor::PrepareCaller(const video::VideoStream& call) {
  const trace::ScopedTimer timer("reconstruct.caller_prepare");
  caller_masker_.Prepare(call);
  caller_prepared_ = true;
}

FrameDecomposition Reconstructor::Decompose(const video::VideoStream& call,
                                            int frame_index) const {
  const Image& frame = call.frame(frame_index);
  FrameDecomposition d;
  {
    const trace::ScopedTimer timer("reconstruct.vbm");
    d.vbm = ComputeVbm(frame,
                       reference_.ImageFor(frame, frame_index, opts_.vb),
                       reference_.ValidFor(frame, frame_index, opts_.vb),
                       opts_.vb.match_tolerance);
  }
  {
    const trace::ScopedTimer timer("reconstruct.bbm");
    d.bbm = ComputeBbm(d.vbm, opts_.phi);
  }
  {
    const trace::ScopedTimer timer("reconstruct.vcm");
    d.vcm = caller_masker_.Vcm(call, frame_index);
  }
  {
    const trace::ScopedTimer timer("reconstruct.lb");
    // LB = residue after removing the three components.
    d.lb = Bitmap(frame.width(), frame.height());
    imaging::kernels::MaskNor(d.bbm.pixels(), d.vcm.pixels(), d.lb.pixels());
  }
  if (trace::Enabled()) {
    // Per-stage masked-pixel volumes; summed per frame, so the totals are
    // independent of how the frame loop is sharded across threads.
    trace::AddCounter("reconstruct.frames_decomposed", 1);
    trace::AddCounter("reconstruct.pixels.vbm", imaging::CountSet(d.vbm));
    trace::AddCounter("reconstruct.pixels.bbm", imaging::CountSet(d.bbm));
    trace::AddCounter("reconstruct.pixels.vcm", imaging::CountSet(d.vcm));
    trace::AddCounter("reconstruct.pixels.lb", imaging::CountSet(d.lb));
  }
  return d;
}

ReconstructionResult Reconstructor::Run(const video::VideoStream& call) {
  const trace::ScopedTimer run_timer("reconstruct.run");
  // Window = call length, so the single flush shards the frame range exactly
  // like the pre-streaming frame loop and the raw segmenter masks are cached
  // (one segmentation per frame, as before).
  StreamingOptions sopts;
  sopts.window_frames = std::max(1, call.frame_count());
  sopts.recon = opts_;
  StreamingReconstructor streaming(reference_, segmenter_, sopts);
  video::VideoStreamSource source(call);
  // An in-memory source never yields a bad pull and no budget/checkpoint is
  // configured, so the streaming run cannot fail here.
  return streaming.Run(source).value();
}

}  // namespace bb::core
