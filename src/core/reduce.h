// Reducer for sharded map-reduce reconstruction (DESIGN.md section 14).
//
// ReducePartials folds K sealed BBPR partials (core/partial.h) into the
// exact ReconstructionResult a single uninterrupted run over the whole
// stream would produce. Before touching any accumulator it validates the
// merge:
//   * every partial must carry the same stream identity, config hash, and
//     finalize parameters (error budget, min_leak_count, max_color_spread)
//     - a mismatch is kFailedPrecondition naming the offending partial;
//   * the frame ranges must be disjoint (kFailedPrecondition naming the
//     overlapping ranges) and must cover [0, frames) completely (kAborted
//     naming the missing frame range);
//   * quarantines are unioned across partials - a frame quarantined by one
//     shard stays quarantined in the merged result - and the merged union
//     is re-checked against the shared error budget (kAborted when
//     exceeded, exactly as the single-process run would have failed).
// The accumulator merge is exact (integer-valued doubles), so the arrival
// order of partials is immaterial: the reducer always reduces in frame-
// range order, and any permutation of the inputs produces the same bits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/partial.h"
#include "core/reconstruction.h"
#include "video/frame_source.h"

namespace bb::core {

// Observability for a merge (mirrored into bb.trace.v1 shard.* counters
// when tracing is enabled).
struct ReduceStats {
  int partials_merged = 0;
  int frames_covered = 0;
  int quarantined = 0;  // size of the merged quarantine union
  std::uint64_t bad_frame_events = 0;
};

// Shared pixel finalization (means + the paper's color-stability filter +
// the min-leak-count filter, sec. V-D): one code path used by both
// StreamingReconstructor::Finalize and ReducePartials, so a merged run is
// bit-identical to a single process by construction. Overwrites
// result->background / coverage / leak_counts.
void FinalizeBackground(const LeakAccumulators& total, int width, int height,
                        double max_color_spread, int min_leak_count,
                        ReconstructionResult* result);

// Merges `partials` (any order) into the single-process result. On
// success `stats`, when non-null, receives the merge accounting.
Result<ReconstructionResult> ReducePartials(
    std::vector<PartialResult> partials, ReduceStats* stats = nullptr);

}  // namespace bb::core
