#include "core/blur_masking.h"

#include <algorithm>
#include <cmath>

#include "imaging/color.h"
#include "imaging/kernels/kernels.h"
#include "imaging/morphology.h"

namespace bb::core {

imaging::Bitmap ComputeBbm(const imaging::Bitmap& vbm, double phi) {
  return imaging::DilateDisc(vbm, phi);
}

double CalibratePhi(const imaging::Image& probe_output,
                    const imaging::Image& virtual_image,
                    const imaging::Image& raw_frame, int tolerance) {
  imaging::RequireSameShape(probe_output, virtual_image, "CalibratePhi");
  imaging::RequireSameShape(probe_output, raw_frame, "CalibratePhi");

  // VB-matching region of the probe.
  imaging::Bitmap vb_region(probe_output.width(), probe_output.height());
  imaging::kernels::MatchMask(probe_output.pixels(), virtual_image.pixels(),
                              {}, tolerance, vb_region.pixels());
  if (imaging::CountSet(vb_region) == 0) return 0.0;

  const imaging::FloatImage dist = imaging::SquaredDistanceToSet(vb_region);
  double max_blur_dist = 0.0;
  for (int y = 0; y < probe_output.height(); ++y) {
    for (int x = 0; x < probe_output.width(); ++x) {
      if (vb_region(x, y)) continue;
      const bool is_vb = imaging::NearlyEqual(probe_output(x, y),
                                              virtual_image(x, y), tolerance);
      const bool is_scene = imaging::NearlyEqual(probe_output(x, y),
                                                 raw_frame(x, y), tolerance);
      if (!is_vb && !is_scene) {
        max_blur_dist = std::max(
            max_blur_dist, static_cast<double>(std::sqrt(dist(x, y))));
      }
    }
  }
  return max_blur_dist;
}

}  // namespace bb::core
