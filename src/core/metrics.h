// Performance metrics (paper sec. VIII-A).
//
//   VBMR - Virtual Background Masking Rate: percentage of the (ground-
//          truth) virtual-background pixels of a frame that the framework
//          masked after the blending-blur stage. 100% means no VB pixel can
//          be mistaken for leaked background.
//   RBRR - Reconstructed Background Recovery Rate: percentage of the
//          original frame recovered by the reconstruction. The paper counts
//          pixels of the original (pre-VB) video leaked in >= 1 frame over
//          the frame resolution. Two variants are exposed:
//            verified - a recovered pixel must actually match the true
//                       background (used for sec. VIII-C results);
//            claimed  - raw recovered coverage (what the attacker believes;
//                       the mitigation analysis in sec. IX-A uses this,
//                       where recovery is polluted by VB pixels).
//   Action Speed  - duration of one action event, seconds.
//   Displacement  - percentage of unique pixel changes across the frames of
//                   an action event.
#pragma once

#include <vector>

#include "core/reconstruction.h"
#include "imaging/image.h"
#include "video/video.h"

namespace bb::core {

struct VbmrOptions {
  int tolerance = 10;  // pixel-compare tolerance for ground-truth VB region
};

// VBMR for one frame. `true_vb_region` is ground truth from the compositor:
// pixels whose output value is (essentially) pure virtual background.
double Vbmr(const FrameDecomposition& decomp,
            const imaging::Bitmap& true_vb_region);

// Mean VBMR over a whole call.
double MeanVbmr(const std::vector<FrameDecomposition>& decomps,
                const std::vector<imaging::Bitmap>& true_vb_regions);

struct RbrrOptions {
  // A recovered pixel is "verified" when its reconstructed color is within
  // this per-channel tolerance of the true background.
  int verify_tolerance = 26;
};

struct RbrrResult {
  double verified = 0.0;  // fraction of frame verified-recovered
  double claimed = 0.0;   // fraction of frame covered by the reconstruction
  // Precision of the reconstruction: verified / claimed (1.0 if nothing
  // claimed).
  double precision = 1.0;
};

RbrrResult Rbrr(const ReconstructionResult& rec,
                const imaging::Image& true_background,
                const RbrrOptions& opts = {});

// Action Speed: seconds from the start to the end of one action event.
double ActionSpeedSeconds(int event_frames, double fps);

// Displacement: percentage (0..1) of pixels that changed in at least one
// frame-to-frame transition of the raw (pre-VB) video segment.
double Displacement(const video::VideoStream& raw_segment,
                    int channel_tolerance = 12);

}  // namespace bb::core
