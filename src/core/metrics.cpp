#include "core/metrics.h"

#include <stdexcept>

#include "imaging/color.h"
#include "imaging/kernels/kernels.h"

namespace bb::core {

double Vbmr(const FrameDecomposition& decomp,
            const imaging::Bitmap& true_vb_region) {
  imaging::RequireSameShape(decomp.bbm, true_vb_region, "Vbmr");
  // "Masked after applying blending blur" (paper sec. VIII-A): only the
  // VBM/BBM stages count (BBM is a superset of VBM); the caller mask is a
  // separate stage.
  std::uint64_t vb_total = 0, vb_masked = 0;
  imaging::kernels::CountMaskedPair(true_vb_region.pixels(),
                                    decomp.bbm.pixels(), &vb_total,
                                    &vb_masked);
  if (vb_total == 0) return 1.0;
  return static_cast<double>(vb_masked) / static_cast<double>(vb_total);
}

double MeanVbmr(const std::vector<FrameDecomposition>& decomps,
                const std::vector<imaging::Bitmap>& true_vb_regions) {
  if (decomps.size() != true_vb_regions.size()) {
    throw std::invalid_argument("MeanVbmr: size mismatch");
  }
  if (decomps.empty()) return 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < decomps.size(); ++i) {
    sum += Vbmr(decomps[i], true_vb_regions[i]);
  }
  return sum / static_cast<double>(decomps.size());
}

RbrrResult Rbrr(const ReconstructionResult& rec,
                const imaging::Image& true_background,
                const RbrrOptions& opts) {
  imaging::RequireSameShape(rec.coverage, true_background, "Rbrr");
  RbrrResult out;
  const std::size_t total = rec.coverage.pixel_count();
  if (total == 0) return out;
  std::uint64_t claimed = 0, verified = 0;
  imaging::kernels::CountClaimedVerified(
      rec.coverage.pixels(), rec.background.pixels(), true_background.pixels(),
      opts.verify_tolerance, &claimed, &verified);
  out.claimed = static_cast<double>(claimed) / static_cast<double>(total);
  out.verified = static_cast<double>(verified) / static_cast<double>(total);
  out.precision = claimed > 0 ? static_cast<double>(verified) /
                                    static_cast<double>(claimed)
                              : 1.0;
  return out;
}

double ActionSpeedSeconds(int event_frames, double fps) {
  if (fps <= 0.0) throw std::invalid_argument("ActionSpeedSeconds: fps <= 0");
  return static_cast<double>(event_frames) / fps;
}

double Displacement(const video::VideoStream& raw_segment,
                    int channel_tolerance) {
  if (raw_segment.frame_count() < 2) return 0.0;
  imaging::Bitmap changed(raw_segment.width(), raw_segment.height());
  for (int i = 1; i < raw_segment.frame_count(); ++i) {
    imaging::kernels::ChangedUnion(raw_segment.frame(i - 1).pixels(),
                                   raw_segment.frame(i).pixels(),
                                   channel_tolerance, changed.pixels());
  }
  return imaging::SetFraction(changed);
}

}  // namespace bb::core
