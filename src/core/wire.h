// Little-endian wire helpers shared by the sealed on-disk state formats
// (BBCK checkpoints in checkpoint.h, BBPR partials in partial.h): byte
// emission into a growing string, a bounds-checked cursor reader whose
// Take* methods return false past the end (so every truncation lands in
// one structured-error path), and the FNV-1a-64 seal both formats append
// over every preceding byte.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace bb::core::wire {

inline std::uint64_t Fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

inline void PutU32(std::string* out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void PutU64(std::string* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

// Cursor-based reader over loaded bytes.
struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  bool TakeU32(std::uint32_t* v) {
    if (pos + 4 > bytes.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[pos++]))
            << shift;
    }
    return true;
  }

  bool TakeU64(std::uint64_t* v) {
    if (pos + 8 > bytes.size()) return false;
    *v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes[pos++]))
            << shift;
    }
    return true;
  }

  bool TakeF64(double* v) {
    std::uint64_t raw = 0;
    if (!TakeU64(&raw)) return false;
    *v = std::bit_cast<double>(raw);
    return true;
  }
};

}  // namespace bb::core::wire
