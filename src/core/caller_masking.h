// Video caller masking (paper sec. V-D).
//
// VCM = person segmentation (DeepLabv3 in the paper; a PersonSegmenter
// substitute here) refined by a statistical color-frequency correction:
// colors that appear with very low frequency inside the caller region
// across the whole call are presumed to be leaked background mistakenly
// kept by the segmenter, and those pixels are flipped out of the VCM.
// The paper's rationale: a leaked background pixel keeps the same color
// whenever it leaks, while true caller-boundary pixels vary as the caller
// moves - so leak colors are rare *within* the caller region but
// persistent, and statistically contrast with the caller's palette.
#pragma once

#include <memory>
#include <vector>

#include "imaging/image.h"
#include "segmentation/segmenter.h"
#include "video/video.h"

namespace bb::core {

struct CallerMaskingOptions {
  // A color bucket whose relative frequency inside the segmented caller
  // region (over the whole call) is below this is treated as leaked
  // background.
  double rare_color_frequency = 0.0025;
  // Never flip pixels deeper than this inside the segmenter mask; the
  // correction targets the uncertain boundary band.
  double protect_core_px = 4.0;
};

class CallerMasker {
 public:
  // The segmenter is shared, not owned; it must outlive the masker.
  CallerMasker(segmentation::PersonSegmenter& segmenter,
               const CallerMaskingOptions& opts = {});

  // Precomputes segmenter masks and the color-frequency statistics for the
  // call. Must be called before Vcm(). (Batch form; retains every raw mask.)
  void Prepare(const video::VideoStream& call);

  // Refined video-caller mask for frame i.
  imaging::Bitmap Vcm(const video::VideoStream& call, int frame_index) const;

  // Raw (unrefined) segmenter output for frame i (for ablations).
  const imaging::Bitmap& RawSegmenterMask(int frame_index) const;

  // Streaming preparation: color statistics accumulate over one in-order
  // pass of frames with O(1) state - raw masks are NOT retained (the caller
  // may cache the returned mask). The segmenter's analysis passes, if any,
  // must have run before BeginPrepare().
  void BeginPrepare();
  // Segments `frame`, folds the mask into the color statistics, and returns
  // the raw mask.
  imaging::Bitmap PushPrepare(const imaging::Image& frame, int frame_index);
  void EndPrepare();

  // Refines a raw segmenter mask into the VCM for `frame` using the
  // statistics from Prepare()/Begin..EndPrepare(). Thread-safe once
  // preparation is complete; Vcm() is a lookup into the retained masks plus
  // this refinement.
  imaging::Bitmap Refine(const imaging::Image& frame,
                         const imaging::Bitmap& raw) const;

  // Segments + refines one frame (the streaming reconstruct path when raw
  // masks were not cached).
  imaging::Bitmap Vcm(const imaging::Image& frame, int frame_index) const;

 private:
  void AccumulateStats(const imaging::Image& frame,
                       const imaging::Bitmap& mask);

  segmentation::PersonSegmenter& segmenter_;
  CallerMaskingOptions opts_;
  std::vector<imaging::Bitmap> raw_masks_;
  std::vector<std::uint64_t> color_counts_;
  std::uint64_t color_total_ = 0;
  bool stats_ready_ = false;  // Refine() usable (streaming or batch)
  bool prepared_ = false;     // raw masks retained (batch only)
};

}  // namespace bb::core
