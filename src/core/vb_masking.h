// Virtual background masking (paper sec. V-B).
//
// First stage of the reconstruction framework: identify which pixels of each
// blended frame belong to the virtual background (VBM). Four scenarios:
//   1. known virtual image      - highest-likelihood match over D_img
//   2. known virtual video      - highest-likelihood match over all frames
//                                 of all videos in D_vid
//   3. unknown virtual image    - derive it from the call: pixels stable
//                                 across >= kDefaultStableRun frames are VB
//   4. unknown virtual video    - detect the loop period, derive each phase
//                                 frame, then per-frame match
// A derived reference can be augmented with derivations from other calls
// using the same VB (the paper's fix for fairly stationary callers).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "imaging/image.h"
#include "video/frame_source.h"
#include "video/video.h"

namespace bb::core {

// Paper: "for a standard 30 fps video stream, a pixel consistent across 10
// or more frames has very high probability of belonging to the virtual
// background".
inline constexpr int kDefaultStableRun = 10;

struct VbMaskingOptions {
  // Per-channel tolerance of the matching function mu. The paper's mu is
  // exact equality; real blending and compression jitter pixels slightly,
  // so a tolerance is applied (0 restores the paper's exact mu).
  int match_tolerance = 10;
  // Frame sampling stride when scoring dictionary candidates.
  int score_frame_stride = 5;
  // Pixel sampling stride when scoring dictionary candidates.
  int score_pixel_stride = 2;
};

// Score of the paper's highest-likelihood estimator: fraction of sampled
// pixels of `frame` equal (within tolerance) to `candidate`.
double MatchFraction(const imaging::Image& frame,
                     const imaging::Image& candidate, int tolerance,
                     int pixel_stride = 1);

// Identifies the virtual image used in `call` from the dictionary; returns
// the best index and its mean match fraction.
struct DictionaryMatch {
  int index = -1;
  double score = 0.0;
};
DictionaryMatch IdentifyKnownImage(
    const video::VideoStream& call,
    std::span<const imaging::Image> dictionary,
    const VbMaskingOptions& opts = {});

// Identifies the virtual *video* used in `call`: returns which dictionary
// video matches best, scored by the best per-frame phase alignment.
DictionaryMatch IdentifyKnownVideo(
    const video::VideoStream& call,
    std::span<const std::vector<imaging::Image>> dictionary,
    const VbMaskingOptions& opts = {});

// A per-frame VB reference: the image to compare frame i against, plus a
// validity mask (derived references have holes where the caller always
// stood).
class VbReference {
 public:
  // Known static image: valid everywhere.
  static VbReference KnownImage(imaging::Image image);

  // Known looping video with known period; phase alignment is found per
  // frame by best match.
  static VbReference KnownVideo(std::vector<imaging::Image> frames);

  // Derives a static VB image from the call (unknown-image scenario).
  static VbReference DeriveImage(const video::VideoStream& call,
                                 int min_stable_run = kDefaultStableRun,
                                 int channel_tolerance = 4);

  // Derives a looping VB video from the call (unknown-video scenario).
  // Returns nullopt when no loop period is detected.
  static std::optional<VbReference> DeriveVideo(
      const video::VideoStream& call, int min_stable_run = kDefaultStableRun,
      int channel_tolerance = 4);

  // Streaming forms of the two derivations: pull the call from a rewindable
  // source instead of a materialized stream, holding O(window) frame state.
  // Bit-identical to the batch forms on the same frames.
  static VbReference DeriveImageStreaming(
      video::FrameSource& source, int min_stable_run = kDefaultStableRun,
      int channel_tolerance = 4);
  static std::optional<VbReference> DeriveVideoStreaming(
      video::FrameSource& source, int window_frames,
      int min_stable_run = kDefaultStableRun, int channel_tolerance = 4);

  // Merges validity/content from another derivation of the SAME virtual
  // background (e.g. from a different call) - fills holes.
  void AugmentWith(const VbReference& other);

  // Reference image to compare the given call frame against. For video
  // references the best-matching phase is selected by pixel similarity.
  const imaging::Image& ImageFor(const imaging::Image& frame,
                                 int frame_index,
                                 const VbMaskingOptions& opts = {}) const;

  // Validity mask companion of ImageFor (all-set for known references).
  const imaging::Bitmap& ValidFor(const imaging::Image& frame,
                                  int frame_index,
                                  const VbMaskingOptions& opts = {}) const;

  bool is_video() const { return frames_.size() > 1; }
  int period() const { return static_cast<int>(frames_.size()); }

  // Fraction of reference pixels that are valid (1.0 for known refs).
  double ValidFraction() const;

 private:
  VbReference() = default;
  int BestPhase(const imaging::Image& frame,
                const VbMaskingOptions& opts) const;

  std::vector<imaging::Image> frames_;
  std::vector<imaging::Bitmap> valid_;
  bool derived_ = false;
};

// Generates the virtual background mask VBM for one frame: set where the
// frame pixel matches the (valid) reference pixel within tolerance.
imaging::Bitmap ComputeVbm(const imaging::Image& frame,
                           const imaging::Image& reference,
                           const imaging::Bitmap& reference_valid,
                           int tolerance);

// In-place form for pooled mask buffers: fully overwrites `*out` (reshaping
// it if needed). ComputeVbm is a wrapper over this.
void ComputeVbmInto(const imaging::Image& frame,
                    const imaging::Image& reference,
                    const imaging::Bitmap& reference_valid, int tolerance,
                    imaging::Bitmap* out);

}  // namespace bb::core
