#include "core/attacks/text_inference.h"

#include <algorithm>

#include "common/trace.h"

namespace bb::core {

std::vector<detect::TextDetection> InferText(
    const ReconstructionResult& reconstruction,
    const detect::OcrOptions& opts) {
  const trace::ScopedTimer timer("attack.text");
  auto detections = detect::DetectText(reconstruction.background,
                                       reconstruction.coverage, opts);
  trace::AddCounter("text.detections", detections.size());
  return detections;
}

TextInferenceScore ScoreText(
    const std::vector<detect::TextDetection>& detections,
    const std::vector<synth::SceneObjectTruth>& truth,
    double accuracy_threshold) {
  TextInferenceScore score;
  for (const auto& obj : truth) {
    if (obj.text.empty()) continue;
    ++score.text_objects;
    double best = 0.0;
    for (const auto& det : detections) {
      // Only credit detections anchored near the object.
      if (imaging::RectIou(det.region, obj.rect) < 0.1) continue;
      best = std::max(best,
                      detect::CharacterAccuracy(obj.text, det.result.text));
    }
    score.best_accuracy = std::max(score.best_accuracy, best);
    if (best >= accuracy_threshold) ++score.texts_found;
  }
  return score;
}

}  // namespace bb::core
