// Specific object tracking attack (paper sec. VI).
//
// Given a template of an object the adversary is looking for, decide
// whether it is present in the reconstructed background. Thin wrapper over
// detect::MatchTemplate applying the paper's decision rule and providing
// the accuracy-evaluation helper used in sec. VIII-D (90 objects, 96.7%).
#pragma once

#include <vector>

#include "core/reconstruction.h"
#include "detect/template_match.h"
#include "imaging/image.h"

namespace bb::core {

struct ObjectTrackingResult {
  bool present = false;
  double score = 0.0;
  imaging::Rect window;
};

// Decides presence of the templated object in the reconstruction.
ObjectTrackingResult TrackObject(
    const ReconstructionResult& reconstruction,
    const imaging::Image& object_template,
    const detect::TemplateMatchOptions& opts = {});

// One labeled trial for accuracy evaluation.
struct TrackingTrial {
  const ReconstructionResult* reconstruction = nullptr;
  imaging::Image object_template;
  bool truly_present = false;
};

struct TrackingAccuracy {
  int true_positives = 0;
  int true_negatives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double Accuracy() const {
    const int total = true_positives + true_negatives + false_positives +
                      false_negatives;
    return total > 0 ? static_cast<double>(true_positives + true_negatives) /
                           total
                     : 0.0;
  }
};

TrackingAccuracy EvaluateTracking(
    const std::vector<TrackingTrial>& trials,
    const detect::TemplateMatchOptions& opts = {});

}  // namespace bb::core
