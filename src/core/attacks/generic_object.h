// Generic object inference attack (paper sec. VI).
//
// Runs template-free detectors (the RetinaNet/YOLO substitute in
// detect/generic.h) over the reconstruction and scores them against scene
// ground truth - which classes were found in the leaked background, and
// with how many false alarms.
#pragma once

#include <vector>

#include "core/reconstruction.h"
#include "detect/generic.h"
#include "synth/scene.h"

namespace bb::core {

// Runs the detectors over the reconstruction.
std::vector<detect::Detection> InferObjects(
    const ReconstructionResult& reconstruction,
    const detect::GenericDetectorOptions& opts = {});

// Maps a synthetic scene-object kind to the detector class that should fire
// on it (paintings report as posters; windows/doors/plain walls have no
// detector class, mirroring the paper's "blank wall / window / door"
// non-detections - those return nullopt).
std::optional<detect::ObjectClass> ExpectedClass(synth::ObjectKind kind);

struct GenericInferenceScore {
  int detectable_objects = 0;   // GT objects with a detector class
  int detected = 0;             // of those, found with IoU >= iou_threshold
  int false_alarms = 0;         // detections matching no GT object
};

// Scores detections against the scene's object ground truth.
GenericInferenceScore ScoreDetections(
    const std::vector<detect::Detection>& detections,
    const std::vector<synth::SceneObjectTruth>& truth,
    double iou_threshold = 0.2);

}  // namespace bb::core
