// Text inference attack (paper sec. VI).
//
// Detects and recognizes text in the reconstructed background (TextFuseNet
// in the paper; the glyph-correlation OCR of detect/ocr.h here) and scores
// it against the scene's ground-truth strings.
#pragma once

#include <string>
#include <vector>

#include "core/reconstruction.h"
#include "detect/ocr.h"
#include "synth/scene.h"

namespace bb::core {

// Runs text detection + recognition over the reconstruction.
std::vector<detect::TextDetection> InferText(
    const ReconstructionResult& reconstruction,
    const detect::OcrOptions& opts = {});

struct TextInferenceScore {
  int text_objects = 0;       // GT objects carrying text
  int texts_found = 0;        // GT strings matched by some detection with
                              // char accuracy >= accuracy_threshold
  double best_accuracy = 0.0; // best char accuracy over all pairs
};

TextInferenceScore ScoreText(
    const std::vector<detect::TextDetection>& detections,
    const std::vector<synth::SceneObjectTruth>& truth,
    double accuracy_threshold = 0.6);

}  // namespace bb::core
