#include "core/attacks/location.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/trace.h"
#include "imaging/kernels/kernels.h"
#include "imaging/transform.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;

namespace kernels = imaging::kernels;

namespace {

// Covered, sampled pixels of one (possibly rotated) reconstruction, in the
// structure-of-arrays form kernels::MatchHsvBounded takes.
struct Samples {
  std::vector<std::int32_t> xs, ys;
  std::vector<Hsv> hsv;

  bool empty() const { return xs.empty(); }
};

Samples CollectSamples(const Image& recon, const Bitmap& coverage,
                       int stride) {
  Samples out;
  for (int y = 0; y < recon.height(); y += stride) {
    for (int x = 0; x < recon.width(); x += stride) {
      if (!coverage(x, y)) continue;
      out.xs.push_back(x);
      out.ys.push_back(y);
      out.hsv.push_back(imaging::RgbToHsv(recon(x, y)));
    }
  }
  return out;
}

kernels::HsvMatchParams ParamsOf(const LocationMatchOptions& o) {
  return {o.min_saturation, o.hue_tolerance, o.value_tolerance};
}

// Running exact maximum over shift sweeps; score() reproduces the double
// the old max-of-doubles code returned (the winning fraction, converted
// once).
struct BestFraction {
  std::int64_t m = 0;
  std::int64_t c = 0;

  void Offer(std::int64_t om, std::int64_t oc) {
    if (kernels::FractionGreater(om, oc, m, c)) {
      m = om;
      c = oc;
    }
  }
  double score() const {
    return c > 0 ? static_cast<double>(m) / static_cast<double>(c) : 0.0;
  }
};

// Sweeps the +/- max_shift grid of one sample set against a candidate HSV
// grid, updating `best` in place. `cov` (optional) gates candidate pixels;
// shifts whose compared count ends below `min_compared` are ignored, as in
// the exhaustive code. With opts.prune, shifts are visited best-first by a
// decimated coarse pass (every 16th sample) and each evaluation carries the
// incumbent into kernels::MatchHsvBounded, whose early-abandon bound is
// exact - the final maximum is bit-identical to the exhaustive sweep.
void SweepShifts(const Samples& samples, const imaging::ImageT<Hsv>& grid,
                 std::span<const std::uint8_t> cov,
                 const LocationMatchOptions& opts, std::int32_t min_compared,
                 BestFraction* best, std::uint64_t* shifts_abandoned) {
  if (samples.empty()) return;
  const kernels::HsvMatchParams params = ParamsOf(opts);
  const int step = std::max(1, opts.shift_step);

  struct Shift {
    std::int32_t dx, dy;
    std::int32_t cm = 0, cc = 0;  // coarse score (visit ordering only)
  };
  std::vector<Shift> shifts;
  for (int dy = -opts.max_shift; dy <= opts.max_shift; dy += step) {
    for (int dx = -opts.max_shift; dx <= opts.max_shift; dx += step) {
      shifts.push_back({dx, dy, 0, 0});
    }
  }

  constexpr std::size_t kCoarseDecimation = 16;
  if (opts.prune && samples.xs.size() >= 4 * kCoarseDecimation) {
    // Coarse pass on a decimated sample set; order-only, so the maximum is
    // untouched - good shifts just reach the incumbent sooner.
    Samples coarse;
    for (std::size_t i = 0; i < samples.xs.size(); i += kCoarseDecimation) {
      coarse.xs.push_back(samples.xs[i]);
      coarse.ys.push_back(samples.ys[i]);
      coarse.hsv.push_back(samples.hsv[i]);
    }
    for (Shift& sh : shifts) {
      const kernels::WindowScore ws = kernels::MatchHsvBounded(
          coarse.hsv, coarse.xs, coarse.ys, grid.pixels(), grid.width(),
          grid.height(), cov, sh.dx, sh.dy, params, /*best_matched=*/0,
          /*best_compared=*/0, /*tie_wins=*/false, /*min_compared=*/0);
      sh.cm = ws.matched;
      sh.cc = ws.compared;
    }
    std::stable_sort(shifts.begin(), shifts.end(),
                     [](const Shift& a, const Shift& b) {
                       return kernels::FractionGreater(a.cm, a.cc, b.cm,
                                                       b.cc);
                     });
  }

  for (const Shift& sh : shifts) {
    // Only the maximum is reported, so a tie never needs to win: abandon as
    // soon as strictly beating the incumbent is impossible.
    const kernels::WindowScore ws = kernels::MatchHsvBounded(
        samples.hsv, samples.xs, samples.ys, grid.pixels(), grid.width(),
        grid.height(), cov, sh.dx, sh.dy, params,
        opts.prune ? best->m : 0, opts.prune ? best->c : 0,
        /*tie_wins=*/false, opts.prune ? min_compared : 0);
    if (ws.abandoned) {
      ++*shifts_abandoned;
      continue;
    }
    if (ws.compared < min_compared) continue;
    best->Offer(ws.matched, ws.compared);
  }
}

imaging::ImageT<Hsv> ToHsvGrid(const Image& img) {
  imaging::ImageT<Hsv> out(img.width(), img.height());
  kernels::RgbToHsvSpan(img.pixels(), out.pixels());
  return out;
}

}  // namespace

double LocationMatchScore(const Image& reconstruction,
                          const Bitmap& coverage, const Image& candidate,
                          const LocationMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "LocationMatchScore");
  const trace::ScopedTimer timer("attack.location.score");
  if (imaging::SetFraction(coverage) < opts.min_coverage) return 0.0;
  const auto candidate_hsv = ToHsvGrid(candidate);
  BestFraction best;
  std::uint64_t shifts_abandoned = 0;
  for (double rot : opts.rotations) {
    const Image r = rot == 0.0 ? reconstruction
                               : imaging::Rotate(reconstruction, rot);
    const Bitmap c = rot == 0.0 ? coverage : imaging::Rotate(coverage, rot);
    const auto samples =
        CollectSamples(r, c, std::max(1, opts.pixel_stride));
    // The incumbent carries across rotations: the maximum is unchanged and
    // later rotations abandon their losing shifts sooner.
    SweepShifts(samples, candidate_hsv, {}, opts, /*min_compared=*/1, &best,
                &shifts_abandoned);
  }
  if (trace::Enabled()) {
    trace::AddCounter("location.shifts_abandoned", shifts_abandoned);
  }
  return best.score();
}

std::vector<RankedCandidate> RankLocations(
    const Image& reconstruction, const Bitmap& coverage,
    std::span<const Image> dictionary, const LocationMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "RankLocations");
  const trace::ScopedTimer timer("attack.location.rank");
  trace::AddCounter("location.candidates_ranked", dictionary.size());

  // Precompute per-rotation sample lists once; reuse for every candidate.
  std::vector<Samples> rotated_samples;
  const bool enough_coverage =
      imaging::SetFraction(coverage) >= opts.min_coverage;
  if (enough_coverage) {
    for (double rot : opts.rotations) {
      const Image r = rot == 0.0 ? reconstruction
                                 : imaging::Rotate(reconstruction, rot);
      const Bitmap c = rot == 0.0 ? coverage : imaging::Rotate(coverage, rot);
      rotated_samples.push_back(
          CollectSamples(r, c, std::max(1, opts.pixel_stride)));
    }
  }

  std::uint64_t shifts_abandoned = 0;
  std::vector<RankedCandidate> ranking;
  ranking.reserve(dictionary.size());
  for (int d = 0; d < static_cast<int>(dictionary.size()); ++d) {
    // Every candidate reports its own full score, so the incumbent resets
    // per candidate and only spans its rotations.
    BestFraction best;
    if (enough_coverage) {
      const auto grid = ToHsvGrid(dictionary[static_cast<std::size_t>(d)]);
      for (const auto& samples : rotated_samples) {
        SweepShifts(samples, grid, {}, opts, /*min_compared=*/1, &best,
                    &shifts_abandoned);
      }
    }
    ranking.push_back({d, best.score()});
  }
  if (trace::Enabled()) {
    trace::AddCounter("location.shifts_abandoned", shifts_abandoned);
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.score > b.score;
                   });
  return ranking;
}

int RankOf(const std::vector<RankedCandidate>& ranking, int true_index) {
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].index == true_index) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(ranking.size()) + 1;
}

double RandomBaselineTopK(int k, int dictionary_size) {
  if (dictionary_size <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(k) /
                           static_cast<double>(dictionary_size));
}

CrossCallMatch MatchReconstructions(const Image& recon_a,
                                    const Bitmap& coverage_a,
                                    const Image& recon_b,
                                    const Bitmap& coverage_b,
                                    const LocationMatchOptions& opts) {
  imaging::RequireSameShape(recon_a, coverage_a, "MatchReconstructions");
  imaging::RequireSameShape(recon_b, coverage_b, "MatchReconstructions");
  imaging::RequireSameShape(recon_a, recon_b, "MatchReconstructions");
  const trace::ScopedTimer timer("attack.location.crosscall");

  CrossCallMatch out;
  out.overlap =
      imaging::SetFraction(imaging::And(coverage_a, coverage_b));
  if (out.overlap < opts.min_coverage) return out;

  // Precompute B's HSV once; only pixels covered in B count as candidates.
  imaging::ImageT<Hsv> b_hsv(recon_b.width(), recon_b.height());
  kernels::RgbToHsvSpan(recon_b.pixels(), b_hsv.pixels());

  BestFraction best;
  std::uint64_t shifts_abandoned = 0;
  for (double rot : opts.rotations) {
    const Image a_img =
        rot == 0.0 ? recon_a : imaging::Rotate(recon_a, rot);
    const Bitmap a_cov =
        rot == 0.0 ? coverage_a : imaging::Rotate(coverage_a, rot);
    const auto samples =
        CollectSamples(a_img, a_cov, std::max(1, opts.pixel_stride));
    // The exhaustive code required compared > 8.
    SweepShifts(samples, b_hsv, coverage_b.pixels(), opts,
                /*min_compared=*/9, &best, &shifts_abandoned);
  }
  if (trace::Enabled()) {
    trace::AddCounter("location.shifts_abandoned", shifts_abandoned);
  }
  out.score = best.score();
  return out;
}

}  // namespace bb::core
