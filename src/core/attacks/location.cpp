#include "core/attacks/location.h"

#include <algorithm>
#include <cmath>

#include "common/trace.h"
#include "imaging/transform.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Hsv;
using imaging::Image;

namespace {

struct Sample {
  int x, y;
  Hsv hsv;
};

// Covered, sampled pixels of one (possibly rotated) reconstruction.
std::vector<Sample> CollectSamples(const Image& recon, const Bitmap& coverage,
                                   int stride) {
  std::vector<Sample> out;
  for (int y = 0; y < recon.height(); y += stride) {
    for (int x = 0; x < recon.width(); x += stride) {
      if (!coverage(x, y)) continue;
      out.push_back({x, y, imaging::RgbToHsv(recon(x, y))});
    }
  }
  return out;
}

bool PixelsMatch(const Hsv& a, const Hsv& b, const LocationMatchOptions& o) {
  const bool a_gray = a.s < o.min_saturation;
  const bool b_gray = b.s < o.min_saturation;
  if (a_gray != b_gray) return false;
  if (a_gray) return std::fabs(a.v - b.v) <= o.value_tolerance;
  return imaging::HueDistance(a.h, b.h) <= o.hue_tolerance;
}

double ScoreAgainstGrid(const std::vector<Sample>& samples,
                        const imaging::ImageT<Hsv>& candidate_hsv,
                        const LocationMatchOptions& opts) {
  double best = 0.0;
  for (int dy = -opts.max_shift; dy <= opts.max_shift; dy += opts.shift_step) {
    for (int dx = -opts.max_shift; dx <= opts.max_shift;
         dx += opts.shift_step) {
      int matched = 0, compared = 0;
      for (const Sample& s : samples) {
        const int cx = s.x + dx, cy = s.y + dy;
        if (!candidate_hsv.InBounds(cx, cy)) continue;
        ++compared;
        matched += PixelsMatch(s.hsv, candidate_hsv(cx, cy), opts);
      }
      if (compared > 0) {
        best = std::max(best,
                        static_cast<double>(matched) /
                            static_cast<double>(compared));
      }
    }
  }
  return best;
}

imaging::ImageT<Hsv> ToHsvGrid(const Image& img) {
  imaging::ImageT<Hsv> out(img.width(), img.height());
  auto pi = img.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pi.size(); ++i) po[i] = imaging::RgbToHsv(pi[i]);
  return out;
}

}  // namespace

double LocationMatchScore(const Image& reconstruction,
                          const Bitmap& coverage, const Image& candidate,
                          const LocationMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "LocationMatchScore");
  const trace::ScopedTimer timer("attack.location.score");
  if (imaging::SetFraction(coverage) < opts.min_coverage) return 0.0;
  const auto candidate_hsv = ToHsvGrid(candidate);
  double best = 0.0;
  for (double rot : opts.rotations) {
    const Image r = rot == 0.0 ? reconstruction
                               : imaging::Rotate(reconstruction, rot);
    const Bitmap c = rot == 0.0 ? coverage : imaging::Rotate(coverage, rot);
    const auto samples =
        CollectSamples(r, c, std::max(1, opts.pixel_stride));
    best = std::max(best, ScoreAgainstGrid(samples, candidate_hsv, opts));
  }
  return best;
}

std::vector<RankedCandidate> RankLocations(
    const Image& reconstruction, const Bitmap& coverage,
    std::span<const Image> dictionary, const LocationMatchOptions& opts) {
  imaging::RequireSameShape(reconstruction, coverage, "RankLocations");
  const trace::ScopedTimer timer("attack.location.rank");
  trace::AddCounter("location.candidates_ranked", dictionary.size());

  // Precompute per-rotation sample lists once; reuse for every candidate.
  std::vector<std::vector<Sample>> rotated_samples;
  const bool enough_coverage =
      imaging::SetFraction(coverage) >= opts.min_coverage;
  if (enough_coverage) {
    for (double rot : opts.rotations) {
      const Image r = rot == 0.0 ? reconstruction
                                 : imaging::Rotate(reconstruction, rot);
      const Bitmap c = rot == 0.0 ? coverage : imaging::Rotate(coverage, rot);
      rotated_samples.push_back(
          CollectSamples(r, c, std::max(1, opts.pixel_stride)));
    }
  }

  std::vector<RankedCandidate> ranking;
  ranking.reserve(dictionary.size());
  for (int d = 0; d < static_cast<int>(dictionary.size()); ++d) {
    double score = 0.0;
    if (enough_coverage) {
      const auto grid = ToHsvGrid(dictionary[static_cast<std::size_t>(d)]);
      for (const auto& samples : rotated_samples) {
        score = std::max(score, ScoreAgainstGrid(samples, grid, opts));
      }
    }
    ranking.push_back({d, score});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.score > b.score;
                   });
  return ranking;
}

int RankOf(const std::vector<RankedCandidate>& ranking, int true_index) {
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].index == true_index) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(ranking.size()) + 1;
}

double RandomBaselineTopK(int k, int dictionary_size) {
  if (dictionary_size <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(k) /
                           static_cast<double>(dictionary_size));
}

CrossCallMatch MatchReconstructions(const Image& recon_a,
                                    const Bitmap& coverage_a,
                                    const Image& recon_b,
                                    const Bitmap& coverage_b,
                                    const LocationMatchOptions& opts) {
  imaging::RequireSameShape(recon_a, coverage_a, "MatchReconstructions");
  imaging::RequireSameShape(recon_b, coverage_b, "MatchReconstructions");
  imaging::RequireSameShape(recon_a, recon_b, "MatchReconstructions");
  const trace::ScopedTimer timer("attack.location.crosscall");

  CrossCallMatch out;
  out.overlap =
      imaging::SetFraction(imaging::And(coverage_a, coverage_b));
  if (out.overlap < opts.min_coverage) return out;

  // Precompute B's HSV once; only pixels covered in B count as candidates.
  imaging::ImageT<Hsv> b_hsv(recon_b.width(), recon_b.height());
  {
    auto pi = recon_b.pixels();
    auto po = b_hsv.pixels();
    for (std::size_t i = 0; i < pi.size(); ++i) {
      po[i] = imaging::RgbToHsv(pi[i]);
    }
  }

  for (double rot : opts.rotations) {
    const Image a_img =
        rot == 0.0 ? recon_a : imaging::Rotate(recon_a, rot);
    const Bitmap a_cov =
        rot == 0.0 ? coverage_a : imaging::Rotate(coverage_a, rot);
    const auto samples =
        CollectSamples(a_img, a_cov, std::max(1, opts.pixel_stride));
    for (int dy = -opts.max_shift; dy <= opts.max_shift;
         dy += opts.shift_step) {
      for (int dx = -opts.max_shift; dx <= opts.max_shift;
           dx += opts.shift_step) {
        int matched = 0, compared = 0;
        for (const Sample& s : samples) {
          const int bx = s.x + dx, by = s.y + dy;
          if (!coverage_b.InBounds(bx, by) || !coverage_b(bx, by)) continue;
          ++compared;
          matched += PixelsMatch(s.hsv, b_hsv(bx, by), opts);
        }
        if (compared > 8) {
          out.score = std::max(out.score, static_cast<double>(matched) /
                                              static_cast<double>(compared));
        }
      }
    }
  }
  return out;
}

}  // namespace bb::core
