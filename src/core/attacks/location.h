// Location inference attack (paper sec. VI, evaluated in sec. VIII-D).
//
// Given a partial reconstruction of the real background and a dictionary of
// known backgrounds (with known locations), rank the dictionary by
// similarity to the reconstruction. Matching is hue-based at the pixel
// level (robust to ambient-light changes between the adversary's prior
// knowledge and the call) and searches over small rotations and shifts of
// the reconstruction (webcam re-adjustment between calls).
#pragma once

#include <span>
#include <vector>

#include "core/reconstruction.h"
#include "imaging/color.h"
#include "imaging/image.h"

namespace bb::core {

struct LocationMatchOptions {
  // Shift search: +/- max_shift in steps of shift_step, both axes.
  int max_shift = 6;
  int shift_step = 3;
  // Rotation search, degrees.
  std::vector<double> rotations{-4.0, -2.0, 0.0, 2.0, 4.0};
  // Hue match tolerance for saturated pixels, degrees.
  float hue_tolerance = 18.0f;
  // Below these, a pixel counts as near-gray and is matched on value
  // (brightness ordering survives lighting changes poorly, so the
  // tolerance is generous).
  float min_saturation = 0.15f;
  float value_tolerance = 0.22f;
  // Sampling stride over recovered pixels.
  int pixel_stride = 2;
  // Reconstructions covering less than this fraction score 0 (nothing to
  // match on).
  double min_coverage = 0.005;
  // Pruned shift search with exact early-abandon: a shift is dropped only
  // when its optimistic completion provably cannot beat the running best,
  // so every score is bit-identical to the exhaustive sweep. Disable only
  // to cross-check or benchmark.
  bool prune = true;
};

// Similarity in [0, 1] between the reconstruction and one candidate
// background: the best, over the transform search space, fraction of
// sampled recovered pixels that match the candidate.
double LocationMatchScore(const imaging::Image& reconstruction,
                          const imaging::Bitmap& coverage,
                          const imaging::Image& candidate,
                          const LocationMatchOptions& opts = {});

struct RankedCandidate {
  int index = -1;
  double score = 0.0;
};

// Ranks every dictionary image by similarity, best first.
std::vector<RankedCandidate> RankLocations(
    const imaging::Image& reconstruction, const imaging::Bitmap& coverage,
    std::span<const imaging::Image> dictionary,
    const LocationMatchOptions& opts = {});

// 1-based rank of `true_index` in a ranking (dictionary size + 1 when
// absent). Top-k success means RankOf(...) <= k.
int RankOf(const std::vector<RankedCandidate>& ranking, int true_index);

// Probability that a uniformly random set of k distinct dictionary picks
// contains the true background (the paper's random baseline): k / N.
double RandomBaselineTopK(int k, int dictionary_size);

// Cross-call matching (paper sec. VI: "we also extend our matching to
// location across different calls, without knowledge of the full real
// background"): decides whether two partial reconstructions come from the
// same room by hue-matching only where BOTH are recovered, over the same
// rotation/shift search.
struct CrossCallMatch {
  double score = 0.0;    // best matched fraction over mutual coverage
  double overlap = 0.0;  // fraction of the frame with mutual coverage
};
CrossCallMatch MatchReconstructions(const imaging::Image& recon_a,
                                    const imaging::Bitmap& coverage_a,
                                    const imaging::Image& recon_b,
                                    const imaging::Bitmap& coverage_b,
                                    const LocationMatchOptions& opts = {});

}  // namespace bb::core
