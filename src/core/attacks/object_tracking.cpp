#include "core/attacks/object_tracking.h"

#include "common/trace.h"

namespace bb::core {

ObjectTrackingResult TrackObject(const ReconstructionResult& reconstruction,
                                 const imaging::Image& object_template,
                                 const detect::TemplateMatchOptions& opts) {
  const trace::ScopedTimer timer("attack.object_tracking");
  const auto match =
      detect::MatchTemplate(reconstruction.background,
                            reconstruction.coverage, object_template, opts);
  if (trace::Enabled() && match.found) {
    trace::AddCounter("object_tracking.objects_found", 1);
  }
  return {match.found, match.score, match.window};
}

TrackingAccuracy EvaluateTracking(const std::vector<TrackingTrial>& trials,
                                  const detect::TemplateMatchOptions& opts) {
  TrackingAccuracy acc;
  for (const TrackingTrial& t : trials) {
    const auto r = TrackObject(*t.reconstruction, t.object_template, opts);
    if (t.truly_present) {
      r.present ? ++acc.true_positives : ++acc.false_negatives;
    } else {
      r.present ? ++acc.false_positives : ++acc.true_negatives;
    }
  }
  return acc;
}

}  // namespace bb::core
