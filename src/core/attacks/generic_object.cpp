#include "core/attacks/generic_object.h"

#include "common/trace.h"

namespace bb::core {

std::vector<detect::Detection> InferObjects(
    const ReconstructionResult& reconstruction,
    const detect::GenericDetectorOptions& opts) {
  const trace::ScopedTimer timer("attack.generic_object");
  auto detections = detect::DetectObjects(reconstruction.background,
                                          reconstruction.coverage, opts);
  trace::AddCounter("generic_object.detections", detections.size());
  return detections;
}

std::optional<detect::ObjectClass> ExpectedClass(synth::ObjectKind kind) {
  using synth::ObjectKind;
  using detect::ObjectClass;
  switch (kind) {
    case ObjectKind::kPoster: return ObjectClass::kPoster;
    case ObjectKind::kPainting: return ObjectClass::kPoster;
    case ObjectKind::kBookshelf: return ObjectClass::kBookshelf;
    case ObjectKind::kStickyNote: return ObjectClass::kStickyNote;
    case ObjectKind::kMonitor: return ObjectClass::kMonitor;
    case ObjectKind::kTv: return ObjectClass::kTv;
    case ObjectKind::kClock: return ObjectClass::kClock;
    case ObjectKind::kToy: return ObjectClass::kToy;
    case ObjectKind::kBook: return ObjectClass::kBook;
    case ObjectKind::kWindow: return std::nullopt;
    case ObjectKind::kDoor: return std::nullopt;
  }
  return std::nullopt;
}

GenericInferenceScore ScoreDetections(
    const std::vector<detect::Detection>& detections,
    const std::vector<synth::SceneObjectTruth>& truth,
    double iou_threshold) {
  GenericInferenceScore score;
  std::vector<bool> detection_used(detections.size(), false);

  for (const auto& obj : truth) {
    const auto expected = ExpectedClass(obj.kind);
    if (!expected) continue;
    ++score.detectable_objects;
    for (std::size_t i = 0; i < detections.size(); ++i) {
      if (detection_used[i]) continue;
      if (detections[i].cls != *expected) continue;
      if (imaging::RectIou(detections[i].rect, obj.rect) >= iou_threshold) {
        detection_used[i] = true;
        ++score.detected;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (detection_used[i]) continue;
    // A leftover detection overlapping ANY ground-truth object (even of a
    // mismatched class) is a confusion, not a hallucination; only
    // detections on empty wall count as false alarms.
    bool overlaps_something = false;
    for (const auto& obj : truth) {
      if (imaging::RectIou(detections[i].rect, obj.rect) >= iou_threshold) {
        overlaps_something = true;
        break;
      }
    }
    if (!overlaps_something) ++score.false_alarms;
  }
  return score;
}

}  // namespace bb::core
