// Streaming-run checkpoints (DESIGN.md "Fault tolerance").
//
// A checkpoint captures everything StreamingReconstructor needs to resume
// an interrupted run with bit-identical final output: the stream identity,
// the run's decomposition range (a shard worker checkpoints exactly like a
// whole-stream run; see DESIGN.md section 14), how far the final
// (accumulation) pass has progressed, the quarantine list, the combined
// leak accumulators, and the per-frame leak fractions produced so far. The
// cheap analysis/caller passes are deterministic and are simply re-run on
// resume; only the expensive decomposition work is skipped. Because every
// accumulator sum is integer-valued (uint8 samples and their squares added
// in doubles), the combined totals are exact and a resumed run may even use
// a different thread count or window size without perturbing a single
// output bit.
//
// File format "BBCK" version 2 (all integers little-endian; doubles as
// IEEE-754 bit patterns):
//
//   magic      "BBCK"                      4 bytes
//   version    u32 = 2
//   width      u32  -+
//   height     u32   | stream identity; resume refuses a checkpoint
//   frames     u32   | whose identity mismatches the source
//   fps_mhz    u32  -+
//   frames_done u32          every frame index below this (and at or above
//                            shard_begin) is decomposed (or quarantined)
//                            and must not be re-pushed
//   shard_begin u32 -+ decomposition range of the writing run; resume
//   shard_end   u32 -+ refuses a checkpoint from a different shard range
//   quarantine u32 count, then count ascending u32 frame indices
//   pixels     u64           width*height (redundant; checked)
//   counts     pixels * u64
//   sum_r/g/b, sum_r2/g2/b2   pixels * f64 each, in that order
//   per_frame  frames * f64   leak fraction per frame
//   checksum   u64            FNV-1a 64 over every preceding byte
//
// Version 1 (PR 5) lacked the shard range; v1 files are refused with a
// structured version mismatch and the run starts fresh.
//
// Writes are crash-consistent: the file is written to "<path>.tmp" and
// renamed into place, so a kill mid-write leaves the previous checkpoint
// intact. Loads treat the file as hostile input - truncation, version
// skew, or bit flips yield a structured error, never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partial.h"
#include "video/frame_source.h"

namespace bb::core {

struct CheckpointState {
  video::StreamInfo info;
  int frames_done = 0;
  // Decomposition range [shard_begin, shard_end) of the run that wrote the
  // checkpoint ([0, frames) for a whole-stream run).
  int shard_begin = 0;
  int shard_end = 0;
  std::vector<int> quarantined;  // ascending frame indices
  LeakAccumulators acc;          // combined per-pixel leak evidence
  std::vector<double> per_frame_leak_fraction;
};

// Serializes `state` to `path` via write-temp-then-rename.
Status SaveCheckpoint(const CheckpointState& state, const std::string& path);

// Parses and validates `path`. kNotFound when the file does not exist
// (callers start fresh); kDataLoss / kFailedPrecondition on corrupt or
// version-mismatched contents (callers should also start fresh, but can
// report why the checkpoint was discarded).
Result<CheckpointState> LoadCheckpoint(const std::string& path);

}  // namespace bb::core
