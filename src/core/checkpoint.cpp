#include "core/checkpoint.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/fileio.h"
#include "core/wire.h"

namespace bb::core {

namespace {

constexpr char kMagic[4] = {'B', 'B', 'C', 'K'};
constexpr std::uint32_t kVersion = 2;

Status Corrupt(const std::string& what) {
  return Status(StatusCode::kDataLoss, what);
}

}  // namespace

Status SaveCheckpoint(const CheckpointState& state, const std::string& path) {
  const std::size_t pixels = state.acc.pixels();
  std::string out;
  out.reserve(72 + pixels * 7 * 8 +
              state.per_frame_leak_fraction.size() * 8);
  out.append(kMagic, 4);
  wire::PutU32(&out, kVersion);
  wire::PutU32(&out, static_cast<std::uint32_t>(state.info.width));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.info.height));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.info.frame_count));
  wire::PutU32(&out,
               static_cast<std::uint32_t>(std::lround(state.info.fps * 1000.0)));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.frames_done));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.shard_begin));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.shard_end));
  wire::PutU32(&out, static_cast<std::uint32_t>(state.quarantined.size()));
  for (int q : state.quarantined) {
    wire::PutU32(&out, static_cast<std::uint32_t>(q));
  }
  wire::PutU64(&out, static_cast<std::uint64_t>(pixels));
  for (int c : state.acc.counts) {
    wire::PutU64(&out, static_cast<std::uint64_t>(c));
  }
  for (const std::vector<double>* arr :
       {&state.acc.sum_r, &state.acc.sum_g, &state.acc.sum_b,
        &state.acc.sum_r2, &state.acc.sum_g2, &state.acc.sum_b2}) {
    for (double v : *arr) wire::PutF64(&out, v);
  }
  for (double v : state.per_frame_leak_fraction) wire::PutF64(&out, v);
  wire::PutU64(&out, wire::Fnv1a64(out));

  return common::AtomicWriteFile(out, path, "checkpoint");
}

Result<CheckpointState> LoadCheckpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status(StatusCode::kNotFound, "no checkpoint file")
        .WithContext("checkpoint " + path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  const auto reject = [&path](const Status& status) {
    return status.WithContext("checkpoint " + path);
  };
  if (bytes.size() < 4 + 4 + 8 ||
      std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return reject(Corrupt("bad magic (want BBCK)"));
  }
  // Checksum first: any bit flip anywhere is caught before parsing.
  const std::string body = bytes.substr(0, bytes.size() - 8);
  wire::Reader tail{bytes, bytes.size() - 8};
  std::uint64_t declared_sum = 0;
  (void)tail.TakeU64(&declared_sum);
  if (wire::Fnv1a64(body) != declared_sum) {
    return reject(Corrupt("checksum mismatch (file corrupted)"));
  }

  wire::Reader r{body, 4};
  std::uint32_t version = 0;
  if (!r.TakeU32(&version)) return reject(Corrupt("truncated header"));
  if (version != kVersion) {
    return reject(Status(
        StatusCode::kFailedPrecondition,
        "unsupported checkpoint version " + std::to_string(version) +
            " (want " + std::to_string(kVersion) + ")"));
  }
  std::uint32_t w = 0, h = 0, frames = 0, fps_mhz = 0, frames_done = 0,
                shard_begin = 0, shard_end = 0, quarantine_count = 0;
  if (!r.TakeU32(&w) || !r.TakeU32(&h) || !r.TakeU32(&frames) ||
      !r.TakeU32(&fps_mhz) || !r.TakeU32(&frames_done) ||
      !r.TakeU32(&shard_begin) || !r.TakeU32(&shard_end) ||
      !r.TakeU32(&quarantine_count)) {
    return reject(Corrupt("truncated header"));
  }
  if (w > 16384 || h > 16384 || frames > 1000000 ||
      frames_done > frames || quarantine_count > frames) {
    return reject(Corrupt("implausible header fields"));
  }
  if (shard_begin > shard_end || shard_end > frames) {
    return reject(Corrupt("implausible shard range"));
  }

  CheckpointState state;
  state.info.width = static_cast<int>(w);
  state.info.height = static_cast<int>(h);
  state.info.frame_count = static_cast<int>(frames);
  state.info.fps = fps_mhz / 1000.0;
  state.frames_done = static_cast<int>(frames_done);
  state.shard_begin = static_cast<int>(shard_begin);
  state.shard_end = static_cast<int>(shard_end);
  state.quarantined.reserve(quarantine_count);
  int prev = -1;
  for (std::uint32_t i = 0; i < quarantine_count; ++i) {
    std::uint32_t q = 0;
    if (!r.TakeU32(&q)) return reject(Corrupt("truncated quarantine list"));
    if (q >= frames || static_cast<int>(q) <= prev) {
      return reject(Corrupt("quarantine list not ascending in-range"));
    }
    prev = static_cast<int>(q);
    state.quarantined.push_back(prev);
  }
  std::uint64_t pixels = 0;
  if (!r.TakeU64(&pixels)) return reject(Corrupt("truncated accumulators"));
  if (pixels != static_cast<std::uint64_t>(w) * h) {
    return reject(Corrupt("pixel count does not match dimensions"));
  }
  state.acc.counts.reserve(pixels);
  for (std::uint64_t i = 0; i < pixels; ++i) {
    std::uint64_t c = 0;
    if (!r.TakeU64(&c)) return reject(Corrupt("truncated accumulators"));
    if (c > frames) return reject(Corrupt("leak count exceeds frame count"));
    state.acc.counts.push_back(static_cast<int>(c));
  }
  for (std::vector<double>* arr :
       {&state.acc.sum_r, &state.acc.sum_g, &state.acc.sum_b,
        &state.acc.sum_r2, &state.acc.sum_g2, &state.acc.sum_b2}) {
    arr->reserve(pixels);
    for (std::uint64_t i = 0; i < pixels; ++i) {
      double v = 0.0;
      if (!r.TakeF64(&v)) return reject(Corrupt("truncated accumulators"));
      if (!std::isfinite(v)) {
        return reject(Corrupt("non-finite accumulator value"));
      }
      arr->push_back(v);
    }
  }
  state.per_frame_leak_fraction.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i) {
    double v = 0.0;
    if (!r.TakeF64(&v)) {
      return reject(Corrupt("truncated per-frame leak fractions"));
    }
    if (!std::isfinite(v)) {
      return reject(Corrupt("non-finite per-frame leak fraction"));
    }
    state.per_frame_leak_fraction.push_back(v);
  }
  if (r.pos != body.size()) {
    return reject(Corrupt("trailing bytes after the declared payload"));
  }
  return state;
}

}  // namespace bb::core
