#include "core/vb_masking.h"

#include <algorithm>
#include <stdexcept>

#include "imaging/color.h"
#include "imaging/kernels/kernels.h"
#include "video/temporal.h"

namespace bb::core {

using imaging::Bitmap;
using imaging::Image;

double MatchFraction(const Image& frame, const Image& candidate,
                     int tolerance, int pixel_stride) {
  imaging::RequireSameShape(frame, candidate, "MatchFraction");
  if (pixel_stride < 1) pixel_stride = 1;
  const std::size_t w = static_cast<std::size_t>(frame.width());
  const std::size_t stride = static_cast<std::size_t>(pixel_stride);
  long long matched = 0, total = 0;
  for (int y = 0; y < frame.height(); y += pixel_stride) {
    const std::size_t row = static_cast<std::size_t>(y) * w;
    matched += static_cast<long long>(imaging::kernels::MatchCountStrided(
        frame.pixels().subspan(row, w), candidate.pixels().subspan(row, w),
        tolerance, stride));
    total += static_cast<long long>((w + stride - 1) / stride);
  }
  return total > 0 ? static_cast<double>(matched) / static_cast<double>(total)
                   : 0.0;
}

DictionaryMatch IdentifyKnownImage(const video::VideoStream& call,
                                   std::span<const Image> dictionary,
                                   const VbMaskingOptions& opts) {
  DictionaryMatch best;
  for (int d = 0; d < static_cast<int>(dictionary.size()); ++d) {
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < call.frame_count();
         i += std::max(1, opts.score_frame_stride)) {
      sum += MatchFraction(call.frame(i), dictionary[static_cast<std::size_t>(d)],
                           opts.match_tolerance, opts.score_pixel_stride);
      ++n;
    }
    const double score = n > 0 ? sum / n : 0.0;
    if (score > best.score) {
      best.score = score;
      best.index = d;
    }
  }
  return best;
}

DictionaryMatch IdentifyKnownVideo(
    const video::VideoStream& call,
    std::span<const std::vector<Image>> dictionary,
    const VbMaskingOptions& opts) {
  DictionaryMatch best;
  for (int d = 0; d < static_cast<int>(dictionary.size()); ++d) {
    const auto& vid = dictionary[static_cast<std::size_t>(d)];
    if (vid.empty()) continue;
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < call.frame_count();
         i += std::max(1, opts.score_frame_stride)) {
      // Best phase for this frame (the paper's estimator maximizes over all
      // frames of all dictionary videos).
      double frame_best = 0.0;
      for (const Image& cand : vid) {
        frame_best = std::max(
            frame_best, MatchFraction(call.frame(i), cand,
                                      opts.match_tolerance,
                                      opts.score_pixel_stride));
      }
      sum += frame_best;
      ++n;
    }
    const double score = n > 0 ? sum / n : 0.0;
    if (score > best.score) {
      best.score = score;
      best.index = d;
    }
  }
  return best;
}

VbReference VbReference::KnownImage(Image image) {
  VbReference ref;
  ref.valid_.emplace_back(image.width(), image.height(), imaging::kMaskSet);
  ref.frames_.push_back(std::move(image));
  return ref;
}

VbReference VbReference::KnownVideo(std::vector<Image> frames) {
  if (frames.empty()) {
    throw std::invalid_argument("VbReference::KnownVideo: no frames");
  }
  VbReference ref;
  for (const Image& f : frames) {
    ref.valid_.emplace_back(f.width(), f.height(), imaging::kMaskSet);
  }
  ref.frames_ = std::move(frames);
  return ref;
}

VbReference VbReference::DeriveImage(const video::VideoStream& call,
                                     int min_stable_run,
                                     int channel_tolerance) {
  const auto layer = video::EstimateStaticLayer(call, min_stable_run,
                                                {channel_tolerance});
  VbReference ref;
  ref.derived_ = true;
  ref.frames_.push_back(layer.color);
  ref.valid_.push_back(layer.valid);
  return ref;
}

std::optional<VbReference> VbReference::DeriveVideo(
    const video::VideoStream& call, int min_stable_run,
    int channel_tolerance) {
  const auto period = video::DetectLoopPeriod(call);
  if (!period) return std::nullopt;
  auto est = video::EstimateLoopFrames(call, *period, {channel_tolerance});
  if (est.phase_frames.empty()) return std::nullopt;
  // Require each phase to have been observed enough times to be meaningful.
  if (call.frame_count() / *period < std::max(2, min_stable_run / *period)) {
    return std::nullopt;
  }
  VbReference ref;
  ref.derived_ = true;
  ref.frames_ = std::move(est.phase_frames);
  ref.valid_ = std::move(est.phase_valid);
  return ref;
}

VbReference VbReference::DeriveImageStreaming(video::FrameSource& source,
                                              int min_stable_run,
                                              int channel_tolerance) {
  source.Reset();
  video::StaticLayerAccumulator acc(
      video::ConsistencyOptions{channel_tolerance});
  imaging::Image frame;
  for (;;) {
    const video::FramePull pull = source.Pull(frame);
    if (pull.status == video::PullStatus::kEnd) break;
    // Degrade: an unreadable frame just shortens the stability runs it
    // would have joined; the static layer comes from the survivors.
    if (pull.status == video::PullStatus::kBad) continue;
    acc.Push(frame);
  }
  const auto layer = acc.Finalize(min_stable_run);
  VbReference ref;
  ref.derived_ = true;
  ref.frames_.push_back(layer.color);
  ref.valid_.push_back(layer.valid);
  return ref;
}

std::optional<VbReference> VbReference::DeriveVideoStreaming(
    video::FrameSource& source, int window_frames, int min_stable_run,
    int channel_tolerance) {
  const auto period = video::DetectLoopPeriodStreaming(source);
  if (!period) return std::nullopt;
  auto est = video::EstimateLoopFramesStreaming(source, *period,
                                                window_frames,
                                                {channel_tolerance});
  if (est.phase_frames.empty()) return std::nullopt;
  // Require each phase to have been observed enough times to be meaningful.
  const int frame_count = source.info().frame_count;
  if (frame_count / *period < std::max(2, min_stable_run / *period)) {
    return std::nullopt;
  }
  VbReference ref;
  ref.derived_ = true;
  ref.frames_ = std::move(est.phase_frames);
  ref.valid_ = std::move(est.phase_valid);
  return ref;
}

void VbReference::AugmentWith(const VbReference& other) {
  if (other.frames_.size() != frames_.size()) {
    throw std::invalid_argument("VbReference::AugmentWith: period mismatch");
  }
  for (std::size_t p = 0; p < frames_.size(); ++p) {
    imaging::RequireSameShape(frames_[p], other.frames_[p], "AugmentWith");
    for (int y = 0; y < frames_[p].height(); ++y) {
      for (int x = 0; x < frames_[p].width(); ++x) {
        if (!valid_[p](x, y) && other.valid_[p](x, y)) {
          frames_[p](x, y) = other.frames_[p](x, y);
          valid_[p](x, y) = imaging::kMaskSet;
        }
      }
    }
  }
}

int VbReference::BestPhase(const Image& frame,
                           const VbMaskingOptions& opts) const {
  int best = 0;
  double best_score = -1.0;
  for (int p = 0; p < static_cast<int>(frames_.size()); ++p) {
    const double s =
        MatchFraction(frame, frames_[static_cast<std::size_t>(p)],
                      opts.match_tolerance,
                      std::max(2, opts.score_pixel_stride));
    if (s > best_score) {
      best_score = s;
      best = p;
    }
  }
  return best;
}

const Image& VbReference::ImageFor(const Image& frame, int frame_index,
                                   const VbMaskingOptions& opts) const {
  if (frames_.size() == 1) return frames_.front();
  (void)frame_index;
  return frames_[static_cast<std::size_t>(BestPhase(frame, opts))];
}

const Bitmap& VbReference::ValidFor(const Image& frame, int frame_index,
                                    const VbMaskingOptions& opts) const {
  if (frames_.size() == 1) return valid_.front();
  (void)frame_index;
  return valid_[static_cast<std::size_t>(BestPhase(frame, opts))];
}

double VbReference::ValidFraction() const {
  if (valid_.empty()) return 0.0;
  double sum = 0.0;
  for (const Bitmap& v : valid_) sum += imaging::SetFraction(v);
  return sum / static_cast<double>(valid_.size());
}

Bitmap ComputeVbm(const Image& frame, const Image& reference,
                  const Bitmap& reference_valid, int tolerance) {
  Bitmap vbm;
  ComputeVbmInto(frame, reference, reference_valid, tolerance, &vbm);
  return vbm;
}

void ComputeVbmInto(const Image& frame, const Image& reference,
                    const Bitmap& reference_valid, int tolerance,
                    Bitmap* out) {
  imaging::RequireSameShape(frame, reference, "ComputeVbm");
  imaging::RequireSameShape(frame, reference_valid, "ComputeVbm");
  if (out->width() != frame.width() || out->height() != frame.height()) {
    *out = Bitmap(frame.width(), frame.height());
  }
  imaging::kernels::MatchMask(frame.pixels(), reference.pixels(),
                              reference_valid.pixels(), tolerance,
                              out->pixels());
}

}  // namespace bb::core
