#include "core/reduce.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "common/trace.h"
#include "imaging/image.h"

namespace bb::core {

namespace {

std::string RangeStr(int begin, int end) {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

bool SameIdentity(const video::StreamInfo& a, const video::StreamInfo& b) {
  return a.width == b.width && a.height == b.height &&
         a.frame_count == b.frame_count &&
         std::lround(a.fps * 1000.0) == std::lround(b.fps * 1000.0);
}

}  // namespace

void FinalizeBackground(const LeakAccumulators& total, int width, int height,
                        double max_color_spread, int min_leak_count,
                        ReconstructionResult* result) {
  const std::size_t pixels =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  result->coverage = imaging::Bitmap(width, height);
  result->leak_counts = imaging::ImageT<int>(width, height, 0);
  result->background = imaging::Image(width, height);
  auto pcov = result->coverage.pixels();
  auto pcnt = result->leak_counts.pixels();
  for (std::size_t k = 0; k < pixels; ++k) {
    pcnt[k] = total.counts[k];
    if (total.counts[k] > 0) pcov[k] = imaging::kMaskSet;
  }

  // Finalize each pixel independently (means + the paper's color-stability
  // filter); row-parallel, disjoint writes.
  auto pbg = result->background.pixels();
  const double max_var = max_color_spread * max_color_spread;
  common::ParallelFor(0, height, /*grain=*/16, [&](std::int64_t y) {
    for (std::size_t k = static_cast<std::size_t>(y) * width,
                     row_end = k + static_cast<std::size_t>(width);
         k < row_end; ++k) {
      if (pcnt[k] == 0) continue;
      if (pcnt[k] < min_leak_count) {
        pcov[k] = imaging::kMaskClear;
        pcnt[k] = 0;
        continue;
      }
      const double inv = 1.0 / pcnt[k];
      const double mr = total.sum_r[k] * inv, mg = total.sum_g[k] * inv,
                   mb = total.sum_b[k] * inv;
      if (max_color_spread > 0.0 && pcnt[k] > 1) {
        const double var = std::max({total.sum_r2[k] * inv - mr * mr,
                                     total.sum_g2[k] * inv - mg * mg,
                                     total.sum_b2[k] * inv - mb * mb});
        if (var > max_var) {
          // Unstable color across observations: caller boundary, not leaked
          // background (paper sec. V-D Color Analysis).
          pcov[k] = imaging::kMaskClear;
          pcnt[k] = 0;
          continue;
        }
      }
      pbg[k] = {static_cast<std::uint8_t>(mr + 0.5),
                static_cast<std::uint8_t>(mg + 0.5),
                static_cast<std::uint8_t>(mb + 0.5)};
    }
  });
}

Result<ReconstructionResult> ReducePartials(
    std::vector<PartialResult> partials, ReduceStats* stats) {
  const trace::ScopedTimer reduce_timer("shard.reduce");
  if (partials.empty()) {
    return Status(StatusCode::kInvalidArgument, "no partials to reduce");
  }

  // Normalize to frame-range order: the merge is exact and therefore
  // order-invariant, but reducing in range order makes the validation
  // messages deterministic no matter how the partials arrived.
  std::vector<std::size_t> order(partials.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (partials[a].range_begin != partials[b].range_begin) {
      return partials[a].range_begin < partials[b].range_begin;
    }
    return partials[a].range_end < partials[b].range_end;
  });

  const PartialResult& first = partials[order.front()];
  for (std::size_t i : order) {
    const PartialResult& p = partials[i];
    if (!SameIdentity(p.info, first.info)) {
      return Status(StatusCode::kFailedPrecondition,
                    "partials disagree on the stream identity "
                    "(dimensions, frame count, or fps): partial " +
                        RangeStr(p.range_begin, p.range_end) +
                        " does not match partial " +
                        RangeStr(first.range_begin, first.range_end));
    }
    if (p.config_hash != first.config_hash) {
      return Status(StatusCode::kFailedPrecondition,
                    "partials disagree on the reconstruction config: "
                    "partial " +
                        RangeStr(p.range_begin, p.range_end) +
                        " was built with a different option set or VB "
                        "reference than partial " +
                        RangeStr(first.range_begin, first.range_end));
    }
    if (p.bad_budget != first.bad_budget ||
        p.min_leak_count != first.min_leak_count ||
        p.max_color_spread != first.max_color_spread) {
      return Status(StatusCode::kFailedPrecondition,
                    "partials disagree on the finalize parameters (error "
                    "budget, min_leak_count, or max_color_spread): "
                    "partial " +
                        RangeStr(p.range_begin, p.range_end) +
                        " does not match partial " +
                        RangeStr(first.range_begin, first.range_end));
    }
  }

  // Coverage: ranges must tile [0, frames) with no overlap and no gap.
  const int frames = first.info.frame_count;
  int cursor = 0;
  for (std::size_t i : order) {
    const PartialResult& p = partials[i];
    if (p.range_begin < cursor) {
      return Status(StatusCode::kFailedPrecondition,
                    "overlapping shard ranges: partial " +
                        RangeStr(p.range_begin, p.range_end) +
                        " overlaps frames already covered up to " +
                        std::to_string(cursor));
    }
    if (p.range_begin > cursor) {
      return Status(StatusCode::kAborted,
                    "incomplete shard coverage: missing frame range " +
                        RangeStr(cursor, p.range_begin));
    }
    cursor = p.range_end;
  }
  if (cursor < frames) {
    return Status(StatusCode::kAborted,
                  "incomplete shard coverage: missing frame range " +
                      RangeStr(cursor, frames));
  }

  // Quarantine union: a frame quarantined by any shard is excluded from
  // the merged run (quarantine stickiness survives the shard boundary).
  std::vector<std::uint8_t> quarantine(static_cast<std::size_t>(frames), 0);
  std::uint64_t bad_events = 0;
  for (const PartialResult& p : partials) {
    for (int q : p.quarantined) {
      quarantine[static_cast<std::size_t>(q)] = 1;
    }
    bad_events += p.bad_frame_events;
  }
  const int quarantined = static_cast<int>(
      std::count(quarantine.begin(), quarantine.end(), std::uint8_t{1}));
  if (first.bad_budget >= 0 && quarantined > first.bad_budget) {
    return Status(StatusCode::kAborted,
                  "bad-frame budget exceeded after merge: " +
                      std::to_string(quarantined) + " of " +
                      std::to_string(frames) +
                      " frames quarantined across all partials (budget " +
                      std::to_string(first.bad_budget) + ")");
  }

  // Exact accumulator merge in range order (any order gives the same bits;
  // see LeakAccumulators) + per-frame fraction splice.
  const std::size_t pixels = static_cast<std::size_t>(first.info.width) *
                             static_cast<std::size_t>(first.info.height);
  LeakAccumulators total;
  total.Zero(pixels);
  ReconstructionResult result;
  result.per_frame_leak_fraction.assign(static_cast<std::size_t>(frames),
                                        0.0);
  for (std::size_t i : order) {
    const PartialResult& p = partials[i];
    total.Add(p.acc);
    std::copy(p.per_frame_leak_fraction.begin(),
              p.per_frame_leak_fraction.end(),
              result.per_frame_leak_fraction.begin() + p.range_begin);
  }
  FinalizeBackground(total, first.info.width, first.info.height,
                     first.max_color_spread, first.min_leak_count, &result);

  if (trace::Enabled()) {
    trace::AddCounter("shard.partials_merged",
                      static_cast<std::uint64_t>(partials.size()));
    trace::AddCounter("shard.merged_quarantined",
                      static_cast<std::uint64_t>(quarantined));
  }
  if (stats != nullptr) {
    stats->partials_merged = static_cast<int>(partials.size());
    stats->frames_covered = frames;
    stats->quarantined = quarantined;
    stats->bad_frame_events = bad_events;
  }
  return result;
}

}  // namespace bb::core
