#include "vbg/compositor.h"

#include <algorithm>
#include <cmath>

#include "common/trace.h"
#include "imaging/color.h"
#include "imaging/filter.h"
#include "imaging/kernels/kernels.h"
#include "imaging/pyramid.h"
#include "imaging/morphology.h"

namespace bb::vbg {

using imaging::Bitmap;
using imaging::Image;

SoftwareProfile ZoomProfile() {
  SoftwareProfile p;
  p.name = "zoom";
  p.matting = MattingParams{};  // defaults are calibrated for the Zoom shape
  p.blend_radius = 4.0;
  return p;
}

SoftwareProfile SkypeProfile() {
  SoftwareProfile p;
  p.name = "skype";
  MattingParams m;
  // "Skype was more accurate in its virtual background rendering"
  // (sec. VIII-E): smaller boundary errors, less lag, faster warm-up.
  m.base_error_px = 1.2;
  m.temporal_lag = 0.42;
  m.initial_bad_frames = 5;
  m.initial_extra_px = 3.5;
  m.motion_error_gain = 4.2;
  m.contrast_confusion_px = 2.0;
  m.blur_confusion = 0.5;
  p.matting = m;
  p.blend_radius = 3.0;
  return p;
}

const char* ToString(BlendMode mode) {
  switch (mode) {
    case BlendMode::kDistanceRamp: return "distance_ramp";
    case BlendMode::kGaussianFeather: return "gaussian_feather";
    case BlendMode::kTrimap: return "trimap";
    case BlendMode::kLaplacianPyramid: return "laplacian_pyramid";
  }
  return "unknown";
}

Image BlendFrame(const Image& real, const Image& vb, const Bitmap& fg_mask,
                 double blend_radius, BlendMode mode) {
  imaging::RequireSameShape(real, vb, "BlendFrame");
  imaging::RequireSameShape(real, fg_mask, "BlendFrame");
  Image out(real.width(), real.height());

  if (blend_radius <= 0.0) {
    imaging::kernels::SelectRgb(fg_mask.pixels(), real.pixels(), vb.pixels(),
                                out.pixels());
    return out;
  }

  if (mode == BlendMode::kLaplacianPyramid) {
    // Multiband blend: hard mask, feathering supplied by the pyramid's
    // per-band smoothing. Pyramid depth scales with the blend radius.
    imaging::FloatImage mask(fg_mask.width(), fg_mask.height());
    imaging::kernels::MaskToFloat(fg_mask.pixels(), mask.pixels());
    const int levels =
        std::clamp(static_cast<int>(std::lround(blend_radius)) / 2 + 2, 2, 6);
    return imaging::PyramidBlend(real, vb, mask, levels);
  }

  if (mode == BlendMode::kGaussianFeather) {
    // "Gaussian blending": alpha = smoothed binary mask. (A box blur of the
    // same radius stands in for the Gaussian kernel; the difference is
    // invisible at these radii.)
    imaging::FloatImage alpha(fg_mask.width(), fg_mask.height());
    imaging::kernels::MaskToFloat(fg_mask.pixels(), alpha.pixels());
    alpha = imaging::BoxBlur(alpha, static_cast<int>(blend_radius + 0.5));
    imaging::kernels::LerpRgb(vb.pixels(), real.pixels(), alpha.pixels(),
                              out.pixels());
    return out;
  }

  const imaging::FloatImage dist_out =
      imaging::SquaredDistanceToSet(fg_mask);
  const imaging::FloatImage dist_in =
      imaging::SquaredDistanceToSet(imaging::Not(fg_mask));
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const double signed_d = fg_mask(x, y) ? std::sqrt(dist_in(x, y))
                                            : -std::sqrt(dist_out(x, y));
      double alpha;
      if (mode == BlendMode::kTrimap) {
        // Three states (paper sec. III): foreground, background, and a
        // fixed 50/50 mixture in the uncertain band. The band spans
        // +/- blend_radius/2 so its total width matches the ramp's.
        const double half = blend_radius * 0.5;
        alpha = signed_d > half ? 1.0 : signed_d < -half ? 0.0 : 0.5;
      } else {
        // kDistanceRamp: 1 deep inside the FG, 0 at blend_radius outside.
        alpha = std::clamp(0.5 + signed_d / (2.0 * blend_radius), 0.0, 1.0);
      }
      out(x, y) = imaging::Lerp(vb(x, y), real(x, y),
                                static_cast<float>(alpha));
    }
  }
  return out;
}

namespace {

// Composites one frame of the call (matting + blend + recording noise).
// `engine` and `recording_rng` are per-call streams that must be fed frames
// in order; `est_out` (optional) receives the software's foreground
// estimate for the ground-truth masks.
Image CompositeOneFrame(const synth::RawRecording& raw,
                        const VirtualSource& vb, const CompositeOptions& opts,
                        int i, MattingEngine& engine,
                        synth::Rng& recording_rng, Bitmap* est_out) {
  const Image& real = raw.video.frame(i);
  const Bitmap& true_mask = raw.caller_masks[static_cast<std::size_t>(i)];
  const Bitmap& blur_mask = raw.blur_masks[static_cast<std::size_t>(i)];

  Bitmap est;
  {
    const trace::ScopedTimer matting_timer("composite.matting");
    est = engine.Estimate(true_mask, blur_mask, real);
  }

  const Image& vb_frame = vb.FrameAt(i);
  imaging::RequireSameShape(real, vb_frame, "ApplyVirtualBackground");
  Image adapted;
  const Image* vb_used = &vb_frame;
  if (opts.adapter) {
    adapted = opts.adapter(vb_frame, real, i);
    vb_used = &adapted;
  }

  Image blended;
  {
    const trace::ScopedTimer blend_timer("composite.blend");
    blended = BlendFrame(real, *vb_used, est, opts.profile.blend_radius,
                         opts.profile.blend_mode);
  }
  if (opts.profile.recording_noise > 0.0) {
    synth::CameraModel recorder;
    recorder.noise_stddev = opts.profile.recording_noise;
    blended = synth::ApplyCamera(blended, recorder, recording_rng);
  }
  if (est_out != nullptr) *est_out = std::move(est);
  return blended;
}

}  // namespace

CompositedCall ApplyVirtualBackground(const synth::RawRecording& raw,
                                      const VirtualSource& vb,
                                      const CompositeOptions& opts) {
  const trace::ScopedTimer run_timer("composite.run");
  CompositedCall out;
  out.video = video::VideoStream(raw.video.fps());

  MattingEngine engine(opts.profile.matting, opts.seed);
  synth::Rng recording_rng(opts.seed ^ 0xEC0DEull);

  if (trace::Enabled()) {
    trace::AddCounter("composite.frames",
                      static_cast<std::uint64_t>(raw.video.frame_count()));
  }
  for (int i = 0; i < raw.video.frame_count(); ++i) {
    Bitmap est;
    out.video.AddFrame(
        CompositeOneFrame(raw, vb, opts, i, engine, recording_rng, &est));
    const Bitmap& true_mask = raw.caller_masks[static_cast<std::size_t>(i)];
    // A background pixel only leaks *unmixed* when it sits deep enough
    // inside the estimated foreground that the blend alpha is ~1.
    const Bitmap pure_fg =
        opts.profile.blend_radius > 0.0
            ? imaging::ErodeDisc(est, opts.profile.blend_radius * 1.05)
            : est;
    out.leak_masks.push_back(imaging::AndNot(pure_fg, true_mask));
    // Pixels far enough from the estimated foreground that the blend alpha
    // is ~0: the output there is pure virtual background.
    out.vb_regions.push_back(
        opts.profile.blend_radius > 0.0
            ? imaging::Not(
                  imaging::DilateDisc(est, opts.profile.blend_radius * 1.05))
            : imaging::Not(est));
    out.estimated_masks.push_back(std::move(est));
  }
  return out;
}

CompositorSource::CompositorSource(const synth::RawRecording& raw,
                                   const VirtualSource& vb,
                                   const CompositeOptions& opts)
    : raw_(&raw), vb_(&vb), opts_(opts) {
  info_.width = raw.video.width();
  info_.height = raw.video.height();
  info_.frame_count = raw.video.frame_count();
  info_.fps = raw.video.fps();
  Reset();
}

void CompositorSource::DoReset() {
  next_ = 0;
  engine_.emplace(opts_.profile.matting, opts_.seed);
  recording_rng_ = synth::Rng(opts_.seed ^ 0xEC0DEull);
}

video::FramePull CompositorSource::DoPull(Image& frame) {
  if (next_ >= info_.frame_count) return {};
  frame = CompositeOneFrame(*raw_, *vb_, opts_, next_, *engine_,
                            recording_rng_, nullptr);
  ++next_;
  return {video::PullStatus::kFrame, OkStatus()};
}

}  // namespace bb::vbg
