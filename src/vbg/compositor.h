// Virtual-background compositor: the simulated video-calling software.
//
// Implements the paper's pipeline (sec. III, Fig. 2): per frame, estimate a
// foreground mask (MattingEngine), then blend the virtual background over
// the background region with a smoothing ring of width `blend_radius`
// around the foreground boundary (the BB component of Fig. 3). The output
// stream is what the adversary records; the per-frame estimated masks and
// true-leak masks are ground truth used only by the evaluation metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "imaging/image.h"
#include "synth/camera.h"
#include "synth/recorder.h"
#include "vbg/matting.h"
#include "vbg/virtual_source.h"
#include "video/frame_source.h"
#include "video/video.h"

namespace bb::vbg {

// How the software blends the virtual background over the background region
// (paper sec. III: "alpha blending, Gaussian blending, and Laplacian
// pyramid blending ... the blending function used by popular video calling
// applications is unknown").
enum class BlendMode {
  // Smooth alpha ramp over the signed distance to the foreground boundary
  // (the default; visually closest to commercial output).
  kDistanceRamp,
  // Alpha = Gaussian blur of the binary mask ("Gaussian blending").
  kGaussianFeather,
  // Three-state trimap: pure FG, pure BG, and a fixed 50/50 mix in the
  // uncertain band (the trimap masks of paper sec. III).
  kTrimap,
  // Burt-Adelson multiband blending ("Laplacian pyramid blending",
  // paper sec. III): each frequency band blended with a progressively
  // smoothed mask.
  kLaplacianPyramid,
};
const char* ToString(BlendMode mode);

// A video-calling software profile: matting behaviour + blending geometry.
// Zoom and Skype "use different virtual background masking techniques;
// Skype was more accurate" (paper sec. VIII-E).
struct SoftwareProfile {
  std::string name;
  MattingParams matting;
  BlendMode blend_mode = BlendMode::kDistanceRamp;
  // Width of the blending ring around the foreground boundary, pixels.
  // (The paper measured phi = 20 at webcam resolution; scaled to the
  // simulation's default 144p this is ~4.)
  double blend_radius = 4.0;
  // Std-dev of Gaussian noise on the recorded output (the paper records
  // the attacked stream with Zoom's recorder: lossy encoding jitters even
  // the virtual-background pixels, which is why known-VB masking tops out
  // near 98.7%, not 100%).
  double recording_noise = 1.2;
};

SoftwareProfile ZoomProfile();
SoftwareProfile SkypeProfile();

// Optional per-frame transformation of the VB frame before compositing -
// the hook the dynamic-virtual-background mitigation (sec. IX-A) plugs into.
// Arguments: (vb_frame, real_frame, frame_index) -> adapted vb frame.
using VbAdapter = std::function<imaging::Image(
    const imaging::Image&, const imaging::Image&, int)>;

struct CompositeOptions {
  SoftwareProfile profile = ZoomProfile();
  std::uint64_t seed = 1;
  VbAdapter adapter;  // null = use the VB source frames unchanged
};

struct CompositedCall {
  video::VideoStream video;  // what the adversary records

  // Ground truth (never shown to the attack framework):
  std::vector<imaging::Bitmap> estimated_masks;  // software's FG estimate
  std::vector<imaging::Bitmap> leak_masks;       // est FG that is really bg
  std::vector<imaging::Bitmap> vb_regions;       // output is pure VB here
};

// Replays a raw recording through the virtual-background feature.
CompositedCall ApplyVirtualBackground(const synth::RawRecording& raw,
                                      const VirtualSource& vb,
                                      const CompositeOptions& opts = {});

// Streams the composited call one frame at a time as a video::FrameSource
// instead of materializing it: frames are bit-identical to
// ApplyVirtualBackground(raw, vb, opts).video, and Reset() replays the
// matting engine and recording-noise streams from frame zero. Ground-truth
// masks are not produced on this path. `raw` and `vb` are borrowed and must
// outlive the source.
class CompositorSource final : public video::FrameSource {
 public:
  CompositorSource(const synth::RawRecording& raw, const VirtualSource& vb,
                   const CompositeOptions& opts = {});

  video::StreamInfo info() const override { return info_; }

 protected:
  video::FramePull DoPull(imaging::Image& frame) override;
  void DoReset() override;

 private:
  const synth::RawRecording* raw_;
  const VirtualSource* vb_;
  CompositeOptions opts_;
  video::StreamInfo info_;
  int next_ = 0;
  std::optional<MattingEngine> engine_;
  synth::Rng recording_rng_{0};
};

// Blends one frame: real where mask is set, vb elsewhere, mixing across a
// boundary band of width `blend_radius` per the chosen mode (exposed for
// unit tests).
imaging::Image BlendFrame(const imaging::Image& real,
                          const imaging::Image& vb,
                          const imaging::Bitmap& fg_mask,
                          double blend_radius,
                          BlendMode mode = BlendMode::kDistanceRamp);

}  // namespace bb::vbg
