#include "vbg/matting.h"

#include <algorithm>
#include <cmath>

#include "imaging/color.h"
#include "imaging/connected_components.h"
#include "imaging/filter.h"
#include "imaging/morphology.h"
#include "vbg/noise_field.h"

namespace bb::vbg {

using imaging::Bitmap;
using imaging::FloatImage;
using imaging::Image;

double FrameQuality(const imaging::Image& frame) {
  if (frame.pixel_count() == 0) return 0.5;
  double sum = 0.0, sum2 = 0.0;
  // bblint: allow(no-per-pixel-loop) -- per-pixel Rng draws simulate matting noise; order-dependent by design
  for (const imaging::Rgb8& p : frame.pixels()) {
    const double l = imaging::Luma(p);
    sum += l;
    sum2 += l * l;
  }
  const double n = static_cast<double>(frame.pixel_count());
  const double mean = sum / n;
  const double var = std::max(0.0, sum2 / n - mean * mean);
  const double stddev = std::sqrt(var);
  // Map luma contrast to [0, 1]; ~18 is a murky lights-off scene, ~60 a
  // crisp studio shot.
  return std::clamp((stddev - 18.0) / 42.0, 0.0, 1.0);
}

MattingEngine::MattingEngine(const MattingParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

Bitmap MattingEngine::Estimate(const Bitmap& true_mask,
                               const Bitmap& blur_mask,
                               const Image& frame) {
  imaging::RequireSameShape(true_mask, frame, "MattingEngine::Estimate");
  imaging::RequireSameShape(true_mask, blur_mask, "MattingEngine::Estimate");
  const int w = true_mask.width(), h = true_mask.height();

  if (prev_true_.empty()) prev_true_ = true_mask;

  // ---- Local error amplitude --------------------------------------------
  const double quality = FrameQuality(frame);
  const double quality_gain =
      params_.quality_gain_low +
      (params_.quality_gain_high - params_.quality_gain_low) * quality;
  const double initial_extra =
      params_.initial_bad_frames > 0
          ? params_.initial_extra_px *
                std::max(0.0, 1.0 - static_cast<double>(frame_index_) /
                                        params_.initial_bad_frames)
          : 0.0;

  // Motion density: fraction of recently changed caller pixels nearby.
  FloatImage motion(w, h, 0.0f);
  {
    auto pt = true_mask.pixels();
    auto pp = prev_true_.pixels();
    auto pm = motion.pixels();
    // bblint: allow(no-per-pixel-loop) -- per-pixel Rng draws simulate matting noise; order-dependent by design
    for (std::size_t i = 0; i < pm.size(); ++i) {
      pm[i] = (pt[i] != 0) != (pp[i] != 0) ? 1.0f : 0.0f;
    }
    motion = imaging::BoxBlur(motion, params_.error_cell_px);
  }

  // ---- Boundary displacement by a smooth noise field ---------------------
  const FloatImage dist_out = imaging::SquaredDistanceToSet(true_mask);
  const FloatImage dist_in =
      imaging::SquaredDistanceToSet(imaging::Not(true_mask));
  NoiseField noise(w, h, params_.error_cell_px, rng_);

  Bitmap est(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double signed_d = true_mask(x, y)
                                  ? -std::sqrt(dist_in(x, y))
                                  : std::sqrt(dist_out(x, y));
      const double motion_factor = std::min(
          1.0, static_cast<double>(motion(x, y)) *
                   params_.motion_density_boost);
      const double amplitude =
          (params_.base_error_px + initial_extra +
           params_.motion_error_gain * motion_factor) *
          quality_gain;
      if (signed_d <= noise.At(x, y) * amplitude) {
        est(x, y) = imaging::kMaskSet;
      }
    }
  }

  // ---- Low-contrast confusion --------------------------------------------
  if (params_.contrast_confusion_px > 0.0) {
    // Mean color of the caller's boundary band (what the engine would
    // compare background pixels against).
    const Bitmap inner_band =
        imaging::AndNot(true_mask, imaging::ErodeDisc(true_mask, 3.0));
    double br = 0, bg = 0, bb = 0, bn = 0;
    auto pb = inner_band.pixels();
    auto pf = frame.pixels();
    // bblint: allow(no-per-pixel-loop) -- per-pixel Rng draws simulate matting noise; order-dependent by design
    for (std::size_t i = 0; i < pb.size(); ++i) {
      if (!pb[i]) continue;
      br += pf[i].r;
      bg += pf[i].g;
      bb += pf[i].b;
      bn += 1.0;
    }
    if (bn > 0.0) {
      const imaging::Rgb8 band_mean{
          static_cast<std::uint8_t>(br / bn),
          static_cast<std::uint8_t>(bg / bn),
          static_cast<std::uint8_t>(bb / bn)};
      const double reach2 = params_.contrast_confusion_px *
                            params_.contrast_confusion_px;
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          if (true_mask(x, y) || est(x, y)) continue;
          if (dist_out(x, y) > reach2) continue;
          if (imaging::RgbDistance(frame(x, y), band_mean) <
              params_.contrast_threshold) {
            est(x, y) = imaging::kMaskSet;
          }
        }
      }
    }
  }

  // ---- Motion-blur ring absorption ----------------------------------------
  if (params_.blur_confusion > 0.0) {
    NoiseField blur_noise(w, h, params_.error_cell_px, rng_);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (!blur_mask(x, y) || est(x, y)) continue;
        // Map smooth N(0,1) to a coherent keep-probability threshold.
        if (blur_noise.At(x, y) * 0.5 + 0.5 < params_.blur_confusion) {
          est(x, y) = imaging::kMaskSet;
        }
      }
    }
  }

  // ---- Temporal lag: retain coherent chunks of the previous estimate ------
  if (!prev_estimate_.empty() && params_.temporal_lag > 0.0) {
    NoiseField lag_noise(w, h, params_.error_cell_px, rng_);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (est(x, y) || !prev_estimate_(x, y)) continue;
        if (lag_noise.At(x, y) * 0.5 + 0.5 < params_.temporal_lag) {
          est(x, y) = imaging::kMaskSet;
        }
      }
    }
  }

  // ---- Cleanup: real engines emit smooth masks ----------------------------
  if (params_.close_radius > 0.0) {
    est = imaging::CloseDisc(est, params_.close_radius);
  }
  if (params_.min_island_area > 0) {
    est = imaging::RemoveSmallComponents(est, params_.min_island_area);
  }

  prev_estimate_ = est;
  prev_true_ = true_mask;
  ++frame_index_;
  return est;
}

}  // namespace bb::vbg
