// Smooth (low-frequency) 2-D noise fields.
//
// The matting-error model displaces the estimated foreground boundary by a
// spatially smooth random amount - real matting networks err in coherent
// patches (a chunk of chair back classified as shoulder), not in per-pixel
// salt-and-pepper. A NoiseField is Gaussian noise on a coarse grid,
// bilinearly interpolated to pixel resolution.
#pragma once

#include "imaging/image.h"
#include "synth/rng.h"

namespace bb::vbg {

class NoiseField {
 public:
  // Creates a field covering a width x height image with one Gaussian knot
  // per `cell` pixels (cell >= 2). Values are N(0, 1).
  NoiseField(int width, int height, int cell, synth::Rng& rng);

  // Bilinearly interpolated value at pixel (x, y).
  float At(int x, int y) const;

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  int width_;
  int height_;
  int cell_;
  int gw_;
  int gh_;
  std::vector<float> grid_;
};

}  // namespace bb::vbg
