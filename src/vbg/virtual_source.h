// Virtual background sources.
//
// The VB feature replaces the background with either a static virtual image
// VI or a looping virtual video (paper sec. III / V-B). Stock generators
// synthesize the "default/popular" backgrounds that populate the adversary's
// dictionaries D_img and D_vid.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "imaging/image.h"
#include "video/video.h"

namespace bb::vbg {

// Provides the VB frame to composite behind frame index i.
class VirtualSource {
 public:
  virtual ~VirtualSource() = default;
  virtual const imaging::Image& FrameAt(int frame_index) const = 0;
};

class StaticImageSource final : public VirtualSource {
 public:
  explicit StaticImageSource(imaging::Image image) : image_(std::move(image)) {}
  const imaging::Image& FrameAt(int) const override { return image_; }
  const imaging::Image& image() const { return image_; }

 private:
  imaging::Image image_;
};

// Loops a fixed frame sequence: frame i shows loop frame i % period.
class LoopingVideoSource final : public VirtualSource {
 public:
  explicit LoopingVideoSource(std::vector<imaging::Image> frames);
  const imaging::Image& FrameAt(int frame_index) const override;
  int period() const { return static_cast<int>(frames_.size()); }
  const std::vector<imaging::Image>& frames() const { return frames_; }

 private:
  std::vector<imaging::Image> frames_;
};

// Built-in stock virtual background images (the "default/popular" images of
// the paper's known-VB scenario).
enum class StockImage { kBeach, kOffice, kSpace, kGradient, kForest };
const char* ToString(StockImage kind);
imaging::Image MakeStockImage(StockImage kind, int width, int height);

// All stock images at the given resolution - a ready-made D_img.
std::vector<imaging::Image> AllStockImages(int width, int height);

// Built-in stock looping VB videos.
enum class StockVideo { kWaves, kStars };
const char* ToString(StockVideo kind);
std::vector<imaging::Image> MakeStockVideo(StockVideo kind, int width,
                                           int height, int period);

}  // namespace bb::vbg
