#include "vbg/dynamic_background.h"

#include <algorithm>
#include <memory>

#include "imaging/color.h"
#include "imaging/filter.h"
#include "vbg/noise_field.h"

namespace bb::vbg {

using imaging::Hsv;
using imaging::Image;

Image AdaptVirtualBackground(const Image& vb, const Image& real_frame,
                             const DynamicVbParams& params,
                             synth::Rng& rng) {
  imaging::RequireSameShape(vb, real_frame, "AdaptVirtualBackground");
  const Image smoothed =
      imaging::GaussianBlur(real_frame, params.smoothing_sigma);

  NoiseField hue_noise(vb.width(), vb.height(), params.jitter_cell_px, rng);

  Image out(vb.width(), vb.height());
  for (int y = 0; y < vb.height(); ++y) {
    for (int x = 0; x < vb.width(); ++x) {
      Hsv v = imaging::RgbToHsv(vb(x, y));
      const Hsv r = imaging::RgbToHsv(smoothed(x, y));
      v.v = static_cast<float>(v.v + (r.v - v.v) * params.value_adoption);
      v.s = static_cast<float>(v.s + (r.s - v.s) * params.saturation_adoption);
      v.h += static_cast<float>(hue_noise.At(x, y) * params.hue_jitter_deg);
      out(x, y) = imaging::HsvToRgb(v);
    }
  }
  return out;
}

VbAdapter MakeDynamicVbAdapter(const DynamicVbParams& params,
                               std::uint64_t seed) {
  auto rng = std::make_shared<synth::Rng>(seed);
  return [params, rng](const Image& vb, const Image& real_frame,
                       int /*frame_index*/) {
    return AdaptVirtualBackground(vb, real_frame, params, *rng);
  };
}

}  // namespace bb::vbg
