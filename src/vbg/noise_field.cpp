#include "vbg/noise_field.h"

#include <algorithm>

namespace bb::vbg {

NoiseField::NoiseField(int width, int height, int cell, synth::Rng& rng)
    : width_(width), height_(height), cell_(std::max(2, cell)) {
  gw_ = width_ / cell_ + 2;
  gh_ = height_ / cell_ + 2;
  grid_.resize(static_cast<std::size_t>(gw_) * gh_);
  for (auto& v : grid_) v = static_cast<float>(rng.Gaussian());
}

float NoiseField::At(int x, int y) const {
  const float fx = static_cast<float>(x) / cell_;
  const float fy = static_cast<float>(y) / cell_;
  int gx = static_cast<int>(fx);
  int gy = static_cast<int>(fy);
  gx = std::clamp(gx, 0, gw_ - 2);
  gy = std::clamp(gy, 0, gh_ - 2);
  const float tx = fx - gx;
  const float ty = fy - gy;
  const float v00 = grid_[static_cast<std::size_t>(gy) * gw_ + gx];
  const float v10 = grid_[static_cast<std::size_t>(gy) * gw_ + gx + 1];
  const float v01 = grid_[static_cast<std::size_t>(gy + 1) * gw_ + gx];
  const float v11 = grid_[static_cast<std::size_t>(gy + 1) * gw_ + gx + 1];
  const float top = v00 * (1 - tx) + v10 * tx;
  const float bot = v01 * (1 - tx) + v11 * tx;
  return top * (1 - ty) + bot * ty;
}

}  // namespace bb::vbg
