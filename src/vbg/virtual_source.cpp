#include "vbg/virtual_source.h"

#include <cmath>
#include <stdexcept>

#include "imaging/color.h"
#include "imaging/draw.h"
#include "synth/rng.h"

namespace bb::vbg {

using imaging::Image;
using imaging::Rect;
using imaging::Rgb8;

LoopingVideoSource::LoopingVideoSource(std::vector<imaging::Image> frames)
    : frames_(std::move(frames)) {
  if (frames_.empty()) {
    throw std::invalid_argument("LoopingVideoSource: no frames");
  }
}

const imaging::Image& LoopingVideoSource::FrameAt(int frame_index) const {
  const int period = static_cast<int>(frames_.size());
  int phase = frame_index % period;
  if (phase < 0) phase += period;
  return frames_[static_cast<std::size_t>(phase)];
}

const char* ToString(StockImage kind) {
  switch (kind) {
    case StockImage::kBeach: return "beach";
    case StockImage::kOffice: return "office";
    case StockImage::kSpace: return "space";
    case StockImage::kGradient: return "gradient";
    case StockImage::kForest: return "forest";
  }
  return "unknown";
}

Image MakeStockImage(StockImage kind, int width, int height) {
  Image img(width, height);
  synth::Rng rng(static_cast<std::uint64_t>(kind) * 7919 + 17);
  switch (kind) {
    case StockImage::kBeach: {
      // Sky / sea / sand horizontal thirds with a sun.
      const int sky = height * 45 / 100, sea = height * 30 / 100;
      imaging::FillRect(img, {0, 0, width, sky}, {140, 200, 238});
      imaging::FillRect(img, {0, sky, width, sea}, {38, 110, 168});
      imaging::FillRect(img, {0, sky + sea, width, height - sky - sea},
                        {226, 203, 148});
      imaging::FillCircle(img, width * 3 / 4, sky / 2, height / 10,
                          {250, 235, 160});
      break;
    }
    case StockImage::kOffice: {
      imaging::FillRect(img, {0, 0, width, height}, {205, 205, 210});
      // Window band and a desk line.
      imaging::FillRect(img, {width / 10, height / 8, width / 3, height / 3},
                        {170, 205, 235});
      imaging::FillRect(img, {width / 2, height / 8, width / 3, height / 3},
                        {170, 205, 235});
      imaging::FillRect(img, {0, height * 3 / 4, width, height / 30 + 1},
                        {120, 95, 70});
      break;
    }
    case StockImage::kSpace: {
      imaging::FillRect(img, {0, 0, width, height}, {8, 8, 24});
      for (int i = 0; i < width * height / 160; ++i) {
        const int x = rng.UniformInt(0, width - 1);
        const int y = rng.UniformInt(0, height - 1);
        const std::uint8_t v =
            static_cast<std::uint8_t>(rng.UniformInt(150, 255));
        img(x, y) = {v, v, v};
      }
      imaging::FillCircle(img, width / 4, height / 3, height / 8,
                          {140, 90, 170});
      break;
    }
    case StockImage::kGradient: {
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          img(x, y) = imaging::Lerp(
              {30, 60, 120}, {180, 60, 120},
              static_cast<float>(x + y) /
                  static_cast<float>(width + height - 2));
        }
      }
      break;
    }
    case StockImage::kForest: {
      imaging::FillRect(img, {0, 0, width, height}, {120, 170, 120});
      for (int i = 0; i < 10; ++i) {
        const int x = rng.UniformInt(0, width - 1);
        const int trunk_w = std::max(2, width / 40);
        imaging::FillRect(img, {x, height / 3, trunk_w, height}, {90, 62, 40});
        imaging::FillCircle(img, x + trunk_w / 2, height / 3, height / 7,
                            {52, 110, 55});
      }
      break;
    }
  }
  return img;
}

std::vector<Image> AllStockImages(int width, int height) {
  std::vector<Image> out;
  for (StockImage k : {StockImage::kBeach, StockImage::kOffice,
                       StockImage::kSpace, StockImage::kGradient,
                       StockImage::kForest}) {
    out.push_back(MakeStockImage(k, width, height));
  }
  return out;
}

const char* ToString(StockVideo kind) {
  switch (kind) {
    case StockVideo::kWaves: return "waves";
    case StockVideo::kStars: return "stars";
  }
  return "unknown";
}

std::vector<Image> MakeStockVideo(StockVideo kind, int width, int height,
                                  int period) {
  std::vector<Image> frames;
  frames.reserve(static_cast<std::size_t>(period));
  constexpr double kPi = 3.14159265358979323846;
  for (int p = 0; p < period; ++p) {
    const double phase = 2.0 * kPi * p / period;
    Image img(width, height);
    switch (kind) {
      case StockVideo::kWaves: {
        img = MakeStockImage(StockImage::kBeach, width, height);
        // Animated wave crest lines sliding with the phase.
        const int sky = height * 45 / 100, sea = height * 30 / 100;
        for (int k = 0; k < 3; ++k) {
          // Floor, not round: nearest-pixel rounding aliases neighbouring
          // phases onto the same row at small frame sizes.
          const int y =
              sky + static_cast<int>(std::floor(
                        (sea - 4) *
                        std::fmod(0.3 * k + phase / (2.0 * kPi), 1.0)));
          imaging::FillRect(img, {0, y, width, 2}, {225, 238, 245});
        }
        break;
      }
      case StockVideo::kStars: {
        img = MakeStockImage(StockImage::kSpace, width, height);
        // A comet orbiting the planet.
        const int cx =
            width / 4 + static_cast<int>(std::lround(std::cos(phase) * width / 5));
        const int cy =
            height / 3 + static_cast<int>(std::lround(std::sin(phase) * height / 5));
        imaging::FillCircle(img, cx, cy, std::max(2, height / 36),
                            {255, 240, 200});
        break;
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

}  // namespace bb::vbg
