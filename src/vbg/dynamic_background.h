// Dynamic virtual background - the paper's primary mitigation (sec. IX-A).
//
// Idea: make leaked real-background pixels indistinguishable from the
// virtual background by (a) adapting the VB's per-pixel brightness and
// saturation toward the real frame's (after Gaussian smoothing, so the VB
// does not simply copy the scene), and (b) randomly fluctuating each VB
// pixel's hue across frames so the adversary's pixel-consistency and
// known-image matching both break.
#pragma once

#include <cstdint>

#include "imaging/image.h"
#include "synth/rng.h"
#include "vbg/compositor.h"

namespace bb::vbg {

struct DynamicVbParams {
  // Gaussian smoothing applied to the real frame's brightness/saturation
  // before the VB adopts them (the paper's "Gaussian kernel").
  double smoothing_sigma = 4.0;
  // How strongly the VB's value/saturation move toward the real frame's
  // (0 = unchanged, 1 = fully adopted).
  double value_adoption = 0.7;
  double saturation_adoption = 0.55;
  // Max per-frame random hue offset, degrees, applied in smooth patches.
  double hue_jitter_deg = 18.0;
  int jitter_cell_px = 10;
};

// Returns a CompositeOptions::adapter implementing the mitigation. The
// returned callable owns its RNG state; one adapter per call.
VbAdapter MakeDynamicVbAdapter(const DynamicVbParams& params,
                               std::uint64_t seed);

// One-shot version (exposed for unit tests).
imaging::Image AdaptVirtualBackground(const imaging::Image& vb,
                                      const imaging::Image& real_frame,
                                      const DynamicVbParams& params,
                                      synth::Rng& rng);

}  // namespace bb::vbg
