// Matting-error model: the simulated foreground/background separator inside
// the video-calling software.
//
// Commercial engines are proprietary; the paper reverse-engineers only their
// principles (mask generation + blending, sec. III) and empirically observes
// the error classes that cause leakage (sec. V-D):
//   * inaccurate human boundaries (under head, near hair, between fingers),
//   * poor accuracy in the first frames of a call ("initial leakage"),
//   * motion-dependent errors (mask lags fast movement; motion blur makes
//     foreground and background blend),
//   * low-contrast confusion (apparel similar to the background).
// This model reproduces each class mechanistically from the ground-truth
// caller mask: the estimated mask is the true boundary displaced by a
// smooth noise field whose local amplitude grows with motion, poor image
// quality and frame recency, blended with the previous estimate (temporal
// lag), plus contrast-driven background inclusion.
#pragma once

#include <cstdint>

#include "imaging/image.h"
#include "synth/rng.h"

namespace bb::vbg {

struct MattingParams {
  // Baseline boundary displacement amplitude, pixels (std-dev of the smooth
  // field). Zoom-class engines ~1.8 at 144p; Skype-class lower.
  double base_error_px = 1.8;

  // Spatial coherence of boundary errors: noise-field knot spacing, pixels.
  int error_cell_px = 16;

  // Fraction of the previous estimated mask retained where it disagrees with
  // the current one (temporal smoothing/lag). This is the main source of
  // leakage during motion: the mask trails the body, passing through real
  // background where the body just was.
  double temporal_lag = 0.68;

  // Tracking is poor for the first frames of a call (paper Fig. 5).
  int initial_bad_frames = 9;
  double initial_extra_px = 6.5;

  // Extra displacement amplitude (pixels) in regions of recent caller
  // motion; the local motion density (0..1 after boosting) scales it.
  double motion_error_gain = 8.0;
  double motion_density_boost = 10.0;

  // Background pixels near the boundary whose color is close to the caller
  // get absorbed into the foreground (low-contrast confusion).
  double contrast_confusion_px = 3.0;   // how far out this effect reaches
  double contrast_threshold = 42.0;     // RGB distance considered "similar"

  // Fraction of the motion-blur ring (pixels only partially covered by the
  // caller during the frame) absorbed into the foreground.
  double blur_confusion = 0.85;

  // Image-quality coupling: amplitude is multiplied by
  //   quality_gain_low  when the frame is flat/noisy (lights off), down to
  //   quality_gain_high when crisp (studio camera).
  double quality_gain_low = 1.45;
  double quality_gain_high = 0.85;

  // Mask cleanup, mimicking the smooth masks real engines output.
  double close_radius = 1.0;
  std::size_t min_island_area = 10;
};

// Stateful per-call matting engine (the temporal lag carries state).
class MattingEngine {
 public:
  MattingEngine(const MattingParams& params, std::uint64_t seed);

  // Estimates the foreground mask for one frame.
  //   true_mask: exact caller silhouette (union over motion samples)
  //   blur_mask: pixels only partially covered (motion blur ring)
  //   frame:     camera-processed frame the engine "sees"
  // Frames must be fed in order; frame_index() tracks position.
  imaging::Bitmap Estimate(const imaging::Bitmap& true_mask,
                           const imaging::Bitmap& blur_mask,
                           const imaging::Image& frame);

  int frame_index() const { return frame_index_; }
  const MattingParams& params() const { return params_; }

 private:
  MattingParams params_;
  synth::Rng rng_;
  int frame_index_ = 0;
  imaging::Bitmap prev_estimate_;
  imaging::Bitmap prev_true_;
};

// Measures a frame's "quality" in [0, 1]: luma contrast normalized; low in
// dim/flat scenes, high in crisp studio footage.
double FrameQuality(const imaging::Image& frame);

}  // namespace bb::vbg
