// Strict parsing of the `--shard I/N` spec shared by the backbuster CLI
// and anything else that accepts a shard coordinate.
//
// The grammar is deliberately narrower than what std::stol would accept:
// both sides must be plain decimal digit runs - no signs, no whitespace,
// no base prefixes, no trailing garbage - with 0 <= I < N and
// 1 <= N <= kMaxShardCount. Every rejection is a structured
// kInvalidArgument naming the offending spec, so hostile forms like
// "0/0", "4/4", "-1/4", "+1/4" or " 1/4" fail the same way instead of
// whatever a permissive integer parse happens to yield.
#pragma once

#include <string_view>

#include "common/status.h"

namespace bb::cli {

// Ceiling on the shard fan-out a spec may name. Far above any sensible
// deployment (one worker per shard), low enough that a hostile spec cannot
// request millions of one-frame slices.
inline constexpr int kMaxShardCount = 256;

struct ShardSpec {
  int index = 0;  // 0-based worker slot, < count
  int count = 0;  // total shards, >= 1
};

Result<ShardSpec> ParseShardSpec(std::string_view spec);

}  // namespace bb::cli
