#include "cli/args.h"

#include <cstdlib>

namespace bb::cli {

Args Args::Parse(int argc, const char* const* argv,
                 const std::set<std::string>& boolean_flags) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2 || token[2] == '-') {
      args.errors_.push_back("malformed argument: " + token);
      continue;
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      const std::string key = token.substr(0, eq);
      if (boolean_flags.count(key)) {
        args.errors_.push_back("flag --" + key + " does not take a value");
        continue;
      }
      args.values_[key] = token.substr(eq + 1);
      continue;
    }
    if (boolean_flags.count(token)) {
      // Declared switches never swallow the next token.
      args.values_[token] = "";
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.values_[token] = argv[i + 1];
      ++i;
    } else {
      args.values_[token] = "";
    }
  }
  return args;
}

std::string Args::Get(const std::string& key,
                      const std::string& fallback) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

std::optional<std::string> Args::Get(const std::string& key) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<long> Args::GetInt(const std::string& key) const {
  const auto s = Get(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> Args::GetDouble(const std::string& key) const {
  const auto s = Get(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

long Args::GetInt(const std::string& key, long fallback) const {
  return GetInt(key).value_or(fallback);
}

double Args::GetDouble(const std::string& key, double fallback) const {
  return GetDouble(key).value_or(fallback);
}

std::vector<std::string> Args::UnconsumedKeys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace bb::cli
