#include "cli/shard_spec.h"

#include <string>

namespace bb::cli {

namespace {

// Parses a plain decimal digit run into *out. Rejects empty input, any
// non-digit character, and values past `max` (which also bounds overflow:
// the accumulator can never exceed 10 * max + 9).
bool ParseDigits(std::string_view text, int max, int* out) {
  if (text.empty()) return false;
  long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > max) return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

Result<ShardSpec> ParseShardSpec(std::string_view spec) {
  const auto reject = [&spec](const std::string& why) {
    return Status(StatusCode::kInvalidArgument,
                  "bad --shard spec '" + std::string(spec) + "': " + why +
                      " (want I/N with digits only, 0 <= I < N <= " +
                      std::to_string(kMaxShardCount) + ")");
  };
  const std::size_t slash = spec.find('/');
  if (slash == std::string_view::npos) return reject("missing '/'");
  if (spec.find('/', slash + 1) != std::string_view::npos) {
    return reject("more than one '/'");
  }
  ShardSpec parsed;
  if (!ParseDigits(spec.substr(slash + 1), kMaxShardCount, &parsed.count)) {
    return reject("shard count is not a plain decimal in range");
  }
  if (parsed.count < 1) return reject("shard count must be >= 1");
  // The index is bounded by the (already validated) count, so the same
  // digit parser rejects overflow without a second limit.
  if (!ParseDigits(spec.substr(0, slash), parsed.count - 1, &parsed.index)) {
    return reject("shard index is not a plain decimal below the count");
  }
  return parsed;
}

}  // namespace bb::cli
