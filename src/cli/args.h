// Minimal command-line argument parsing for the backbuster CLI.
//
// Grammar: <command> [--flag] [--key value] ... Flags may be given as
// --key=value or --key value; unknown keys are collected so the caller can
// reject them with a helpful message.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace bb::cli {

class Args {
 public:
  // Parses argv[1..); argv[1] is the command unless it starts with "--".
  // Keys listed in `boolean_flags` are switches: they never consume the
  // following token as a value (so `--verbose out.bbv` leaves `out.bbv`
  // alone) and reject the `--flag=value` spelling. Undeclared keys keep
  // the permissive "--key value" grammar.
  static Args Parse(int argc, const char* const* argv,
                    const std::set<std::string>& boolean_flags = {});

  const std::string& command() const { return command_; }

  // Presence test; marks the key consumed (see UnconsumedKeys).
  bool Has(const std::string& key) const {
    consumed_[key] = true;
    return values_.count(key) > 0;
  }

  // Presence of a boolean switch; marks it consumed. Identical to Has()
  // today, spelled separately so call sites read as flag lookups.
  bool GetFlag(const std::string& key) const { return Has(key); }

  // String value; `fallback` when absent.
  std::string Get(const std::string& key, const std::string& fallback) const;

  // Typed accessors: nullopt when absent, parse errors are recorded.
  std::optional<std::string> Get(const std::string& key) const;
  std::optional<long> GetInt(const std::string& key) const;
  std::optional<double> GetDouble(const std::string& key) const;
  long GetInt(const std::string& key, long fallback) const;
  double GetDouble(const std::string& key, double fallback) const;

  // Keys the caller never consumed; call after all Get()s to reject typos.
  // (Every Get/Has marks its key as consumed.)
  std::vector<std::string> UnconsumedKeys() const;

  // Parse-phase problems (e.g. "--key" at end expecting a value is fine -
  // it becomes a boolean flag - but "---x" is malformed).
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> errors_;
};

}  // namespace bb::cli
