// Dependency-free parallel runtime for the reconstruction pipeline.
//
// Design goals (see DESIGN.md "Concurrency"):
//   * Determinism. Every helper decomposes its index range into contiguous
//     chunks whose boundaries depend only on the range and the configured
//     thread count - never on timing. Callers either write disjoint outputs
//     (ParallelFor) or accumulate into per-shard state that is reduced
//     serially in shard order (ParallelShards), so results are bit-identical
//     across runs and, for integer-valued accumulations, across thread
//     counts too.
//   * Exact serial fallback. With an effective thread count of 1 (or a range
//     smaller than the grain) the loop body runs inline on the calling
//     thread, taking the same code path a serial build would.
//   * No nested fan-out. A worker that re-enters the runtime runs the inner
//     loop inline; the pool can never deadlock on itself.
//
// Thread-count resolution: SetThreadCount() override > BB_THREADS env >
// std::thread::hardware_concurrency(), clamped to >= 1.
#pragma once

#include <cstdint>
#include <functional>

namespace bb::common {

// Effective worker count used by the helpers below. Always >= 1.
int ThreadCount();

// Overrides the thread count (the CLI's --threads flag lands here).
// n <= 0 restores the default BB_THREADS / hardware_concurrency resolution.
void SetThreadCount(int n);

// Number of contiguous shards ParallelShards would split `items` into:
// min(ThreadCount(), items / grain) but at least 1. Depends only on its
// arguments and the configured thread count.
int NumShards(std::int64_t items, std::int64_t grain = 1);

// Splits [begin, end) into NumShards(end - begin, grain) contiguous chunks
// and invokes fn(shard, chunk_begin, chunk_end) for each, concurrently.
// Shard boundaries are a pure function of the range and shard count. Blocks
// until every chunk completed; rethrows the first exception thrown by fn.
void ParallelShards(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(int shard, std::int64_t chunk_begin,
                             std::int64_t chunk_end)>& fn);

// Statically-chunked parallel loop: invokes fn(i) for every i in
// [begin, end). `grain` is the minimum number of iterations worth handing
// to a thread; ranges below 2 * grain run inline. fn must write disjoint
// state per index (row-parallel kernels do).
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t i)>& fn);

// Lazily-initialized shared worker pool. Most code wants the helpers above;
// the pool is exposed for tests and benches that need direct control.
class ThreadPool {
 public:
  // The process-wide pool. Created on first use; workers are added lazily
  // as larger thread counts are requested.
  static ThreadPool& Instance();

  // Runs tasks fn(0) .. fn(task_count - 1) on up to `max_workers` threads
  // (the calling thread participates). Blocks until all tasks completed;
  // rethrows the first exception. Task indices are claimed dynamically, so
  // only use this when fn's effects are order-independent.
  void Run(int max_workers, int task_count,
           const std::function<void(int task)>& fn);

  // Workers currently alive (for tests).
  int worker_count() const;

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;
  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed before workers join

  Impl* impl_ = nullptr;
};

// True while the calling thread is executing inside a ParallelFor /
// ParallelShards / ThreadPool::Run body; used to run nested parallelism
// inline.
bool InParallelRegion();

}  // namespace bb::common
