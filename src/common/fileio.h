// Crash-consistent file writes shared by every sealed on-disk format
// (BBCK checkpoints, BBPR partials, BBJB job records).
//
// AtomicWriteFile writes `bytes` to "<path>.tmp" and renames it into place,
// so a crash at any instant leaves either the previous file or the new one
// - never a truncated hybrid - and a failed write never makes a partial
// payload visible at `path`.
//
// The "write" fault-injection point (occurrence-keyed, like "alloc") makes
// the discipline chaos-testable:
//   write@K=fail      the K-th write errors before touching the filesystem
//   write@K=truncate  the K-th write stops halfway through the temp file
//                     and reports failure; the temp file is left behind but
//                     never renamed into place
//   write@K=corrupt   the K-th write flips one payload byte and succeeds -
//                     silent media corruption the reader's checksum must
//                     catch at load time
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace bb::common {

// Writes `bytes` to `path` via write-temp-then-rename. `what` names the
// payload kind in error messages ("checkpoint", "partial", "job").
Status AtomicWriteFile(const std::string& bytes, const std::string& path,
                       std::string_view what);

}  // namespace bb::common
