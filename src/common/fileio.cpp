#include "common/fileio.h"

#include <cstdio>
#include <fstream>

#include "common/faultinject.h"
#include "common/trace.h"

namespace bb::common {

Status AtomicWriteFile(const std::string& bytes, const std::string& path,
                       std::string_view what) {
  const std::string tmp = path + ".tmp";
  const auto label = [&](const std::string& p) {
    return std::string(what) + " " + p;
  };

  // Injected media faults (see header). The occurrence counter is consumed
  // only while a schedule is armed, so a fault-free run costs one relaxed
  // atomic load here.
  std::string corrupted;
  const std::string* payload = &bytes;
  bool short_write = false;
  if (faultinject::Enabled()) {
    if (const auto kind =
            faultinject::At("write", faultinject::NextCount("write"))) {
      if (trace::Enabled()) trace::AddCounter("fault.injected.write", 1);
      switch (*kind) {
        case faultinject::FaultKind::kFail:
          return Status(StatusCode::kIoError, "injected write failure")
              .WithContext(label(tmp));
        case faultinject::FaultKind::kTruncate:
          short_write = true;
          break;
        case faultinject::FaultKind::kCorrupt:
          corrupted = bytes;
          if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0x20;
          payload = &corrupted;
          break;
      }
    }
  }

  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return Status(StatusCode::kIoError, "cannot open for writing")
          .WithContext(label(tmp));
    }
    const std::size_t n = short_write ? payload->size() / 2 : payload->size();
    f.write(payload->data(), static_cast<std::streamsize>(n));
    if (!f) {
      return Status(StatusCode::kIoError, "write failed")
          .WithContext(label(tmp));
    }
  }
  if (short_write) {
    // The truncated temp file stays on disk (as it would after a real
    // crash) but is never renamed over the sealed payload at `path`.
    return Status(StatusCode::kIoError, "injected short write")
        .WithContext(label(tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status(StatusCode::kIoError, "rename into place failed")
        .WithContext(label(path));
  }
  return OkStatus();
}

}  // namespace bb::common
