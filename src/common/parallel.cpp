#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bb::common {

namespace {

std::atomic<int> g_thread_override{0};

thread_local bool t_in_parallel_region = false;

int DefaultThreadCount() {
  if (const char* env = std::getenv("BB_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<int>(std::min(v, 256L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// RAII guard for the nested-region flag.
struct RegionGuard {
  bool previous = t_in_parallel_region;
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = previous; }
};

}  // namespace

int ThreadCount() {
  const int o = g_thread_override.load(std::memory_order_relaxed);
  if (o >= 1) return o;
  // Resolve once; the env and hardware do not change mid-process.
  static const int resolved = DefaultThreadCount();
  return resolved;
}

void SetThreadCount(int n) {
  g_thread_override.store(n >= 1 ? std::min(n, 256) : 0,
                          std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

int NumShards(std::int64_t items, std::int64_t grain) {
  if (items <= 0) return 1;
  if (grain < 1) grain = 1;
  const std::int64_t by_grain = (items + grain - 1) / grain;
  return static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(ThreadCount(),
                                                       by_grain)));
}

// ---- ThreadPool ------------------------------------------------------------

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait here for a job
  std::condition_variable done_cv;   // Run() waits here for completion
  std::vector<std::thread> workers;

  // Current job; guarded by mu except for next_task (atomic claim).
  std::uint64_t epoch = 0;           // bumped per job
  const std::function<void(int)>* fn = nullptr;
  int task_count = 0;
  std::atomic<int> next_task{0};
  int unfinished = 0;                // tasks not yet completed
  std::exception_ptr first_error;
  bool shutdown = false;

  // Serializes Run() callers; the pool executes one job at a time.
  std::mutex run_mu;

  void WorkerLoop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return shutdown || epoch != seen; });
      if (shutdown) return;
      seen = epoch;
      const auto* job = fn;
      const int count = task_count;
      lock.unlock();
      DrainTasks(job, count);
      lock.lock();
    }
  }

  // Claims and runs tasks until none remain; records completions.
  void DrainTasks(const std::function<void(int)>* job, int count) {
    RegionGuard region;
    int done_here = 0;
    std::exception_ptr error;
    for (;;) {
      const int task = next_task.fetch_add(1, std::memory_order_relaxed);
      if (task >= count) break;
      try {
        (*job)(task);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++done_here;
    }
    if (done_here > 0 || error) {
      std::lock_guard<std::mutex> lock(mu);
      unfinished -= done_here;
      if (error && !first_error) first_error = error;
      if (unfinished == 0) done_cv.notify_all();
    }
  }

  void EnsureWorkers(int n) {
    // Called with mu held.
    while (static_cast<int>(workers.size()) < n) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }
};

ThreadPool::Impl* ThreadPool::impl() {
  // The pool is a leaked singleton (see Instance()), so impl_ lives for the
  // process; guard only the first construction.
  static std::once_flag once;
  std::call_once(once, [this] { impl_ = new Impl; });
  return impl_;
}

ThreadPool& ThreadPool::Instance() {
  // Leaked intentionally: worker threads may outlive static destruction
  // order otherwise. The OS reclaims everything at exit.
  static ThreadPool* pool = new ThreadPool;
  return *pool;
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

int ThreadPool::worker_count() const {
  if (!impl_) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<int>(impl_->workers.size());
}

void ThreadPool::Run(int max_workers, int task_count,
                     const std::function<void(int)>& fn) {
  if (task_count <= 0) return;
  if (max_workers <= 1 || task_count == 1 || t_in_parallel_region) {
    // Serial path: identical to a plain loop, no pool involvement.
    RegionGuard region;
    for (int i = 0; i < task_count; ++i) fn(i);
    return;
  }

  Impl* p = impl();
  std::lock_guard<std::mutex> run_lock(p->run_mu);
  const int helpers = std::min(max_workers, task_count) - 1;
  {
    std::lock_guard<std::mutex> lock(p->mu);
    p->EnsureWorkers(helpers);
    p->fn = &fn;
    p->task_count = task_count;
    p->next_task.store(0, std::memory_order_relaxed);
    p->unfinished = task_count;
    p->first_error = nullptr;
    ++p->epoch;
  }
  p->work_cv.notify_all();

  // The caller participates instead of idling.
  p->DrainTasks(&fn, task_count);

  std::unique_lock<std::mutex> lock(p->mu);
  p->done_cv.wait(lock, [&] { return p->unfinished == 0; });
  p->fn = nullptr;
  if (p->first_error) {
    auto error = p->first_error;
    p->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

// ---- Helpers ---------------------------------------------------------------

void ParallelShards(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  const std::int64_t items = end - begin;
  if (items <= 0) return;
  const int shards = InParallelRegion() ? 1 : NumShards(items, grain);
  if (shards == 1) {
    RegionGuard region;
    fn(0, begin, end);
    return;
  }
  // Balanced contiguous split: shard s covers
  // [begin + s * items / shards, begin + (s + 1) * items / shards).
  ThreadPool::Instance().Run(shards, shards, [&](int s) {
    const std::int64_t b = begin + items * s / shards;
    const std::int64_t e = begin + items * (s + 1) / shards;
    if (b < e) fn(s, b, e);
  });
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t)>& fn) {
  const std::int64_t items = end - begin;
  if (items <= 0) return;
  if (grain < 1) grain = 1;
  if (items < 2 * grain || ThreadCount() == 1 || InParallelRegion()) {
    RegionGuard region;
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ParallelShards(begin, end, grain,
                 [&](int /*shard*/, std::int64_t b, std::int64_t e) {
                   for (std::int64_t i = b; i < e; ++i) fn(i);
                 });
}

}  // namespace bb::common
