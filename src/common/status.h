// Structured error propagation (DESIGN.md "Fault tolerance").
//
// bb::Status carries an error code plus a human-readable message that grows
// a context chain as it propagates outward ("open call.bbv: header: bad
// magic"), so a failure deep in a reader reaches the CLI with the *reason*
// attached, not just a bare nullopt. bb::Result<T> is the value-or-Status
// companion with an optional-like surface so existing call sites convert
// with minimal churn.
//
// Both types are [[nodiscard]] at the type level: silently dropping an error
// is a compile-time warning (an error under BB_WERROR) and a bblint finding
// (rule no-silent-error-drop). Thin std::optional wrappers remain where a
// caller genuinely only cares about presence.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace bb {

enum class StatusCode {
  kOk = 0,
  kNotFound,            // the named resource does not exist
  kIoError,             // read/write failed below the format layer
  kInvalidArgument,     // caller-supplied parameter is unusable
  kDataLoss,            // payload present but corrupt/truncated/injected-bad
  kFailedPrecondition,  // operation illegal in the current state
  kResourceExhausted,   // allocation or budget exhausted
  kAborted,             // operation stopped (e.g. error budget exceeded)
  kInternal,            // invariant violation; a bug, not an input problem
};

// Stable upper-snake name ("DATA_LOSS") used in messages and tests.
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a copy with `context` prepended to the message, preserving the
  // code: Status(kIoError, "short read").WithContext("frame 7") renders as
  // "IO_ERROR: frame 7: short read".
  Status WithContext(std::string_view context) const;

  // "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

  bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

// Value-or-error. Deliberately optional-shaped (has_value/operator*/value)
// so call sites that used std::optional migrate by changing only the failure
// path. value() on an error throws std::runtime_error carrying the status
// text - reaching it means the caller skipped the ok() check, which is a
// programming error, not a recoverable condition.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from an OK status with no value");
    }
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return value_.has_value(); }

  // OK when a value is held.
  const Status& status() const { return status_; }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  T& value() & {
    EnsureOk();
    return *value_;
  }
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return std::move(*value_);
  }

 private:
  void EnsureOk() const {
    if (!value_.has_value()) {
      throw std::runtime_error("Result::value() on error: " +
                               status_.ToString());
    }
  }

  std::optional<T> value_;
  Status status_;  // OK when value_ is engaged
};

}  // namespace bb
