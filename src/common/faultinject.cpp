#include "common/faultinject.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace bb::faultinject {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::pair<std::string, std::int64_t>, FaultKind> schedule;
  std::map<std::string, std::int64_t> counts;
  std::uint64_t fired = 0;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // never destroyed: injection sites
  return *r;                            // may outlive static destruction
}

std::atomic<bool> g_enabled{false};

// Parses one schedule entry "point@key=kind" into the maps. Returns a
// non-OK status naming the entry on malformed input.
Status ParseEntry(std::string_view entry,
                  std::map<std::pair<std::string, std::int64_t>, FaultKind>*
                      schedule) {
  const auto fail = [&](const char* what) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + " in fault entry '" +
                      std::string(entry) + "' (want point@index=kind)");
  };
  const std::size_t at = entry.find('@');
  const std::size_t eq = entry.find('=');
  if (at == std::string_view::npos || eq == std::string_view::npos ||
      at == 0 || eq < at + 2 || eq + 1 >= entry.size()) {
    return fail("malformed entry");
  }
  const std::string point(entry.substr(0, at));
  const std::string key_text(entry.substr(at + 1, eq - at - 1));
  const std::string_view kind_name = entry.substr(eq + 1);

  std::int64_t key = 0;
  for (char c : key_text) {
    if (c < '0' || c > '9') return fail("non-numeric index");
    key = key * 10 + (c - '0');
    if (key > 1000000000) return fail("index out of range");
  }

  FaultKind kind;
  if (kind_name == "fail") {
    kind = FaultKind::kFail;
  } else if (kind_name == "truncate") {
    kind = FaultKind::kTruncate;
  } else if (kind_name == "corrupt") {
    kind = FaultKind::kCorrupt;
  } else {
    return fail("unknown fault kind");
  }
  (*schedule)[{point, key}] = kind;
  return OkStatus();
}

// BB_FAULTS=<spec> installs a schedule for any binary linking this TU.
const bool g_env_configured = [] {
  const char* env = std::getenv("BB_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    const Status status = Configure(env);
    if (!status.ok()) {
      std::fprintf(stderr, "faultinject: ignoring BB_FAULTS: %s\n",
                   status.ToString().c_str());
    }
  }
  return true;
}();

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

Status Configure(std::string_view spec) {
  std::map<std::pair<std::string, std::int64_t>, FaultKind> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(begin, end - begin);
    // Tolerate surrounding whitespace so shell-quoted specs read naturally.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (!entry.empty()) {
      const Status status = ParseEntry(entry, &parsed);
      if (!status.ok()) return status;
    }
    if (end == spec.size()) break;
    begin = end + 1;
  }

  Registry& r = GetRegistry();
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    r.schedule = std::move(parsed);
    r.counts.clear();
    r.fired = 0;
    g_enabled.store(!r.schedule.empty(), std::memory_order_relaxed);
  }
  return OkStatus();
}

void Clear() {
  Registry& r = GetRegistry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.schedule.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

std::optional<FaultKind> At(std::string_view point, std::int64_t key) {
  if (!Enabled()) return std::nullopt;
  Registry& r = GetRegistry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.schedule.find({std::string(point), key});
  if (it == r.schedule.end()) return std::nullopt;
  ++r.fired;
  return it->second;
}

std::int64_t NextCount(std::string_view point) {
  Registry& r = GetRegistry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.counts[std::string(point)]++;
}

std::uint64_t FiredCount() {
  Registry& r = GetRegistry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.fired;
}

}  // namespace bb::faultinject
