#include "common/status.h"

namespace bb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  if (!message_.empty()) {
    message += ": ";
    message += message_;
  }
  return Status(code_, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bb
