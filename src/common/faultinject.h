// Deterministic fault injection (DESIGN.md "Fault tolerance").
//
// A process-wide, schedule-driven fault registry with the same discipline as
// trace.h: zero overhead when disabled (Enabled() is a relaxed atomic load
// and a branch - no lock, no lookup, no allocation), and observation-free
// when enabled (a fired fault changes only the instrumented call's outcome,
// never unrelated state).
//
// Schedules are exact, not probabilistic, so every failure a test provokes
// is replayable: the spec
//
//     read@7=truncate,read@19=corrupt,alloc@3=fail,source@4=fail
//
// makes the .bbv reader fail frame 7 as a short read and frame 19 as a
// payload-integrity failure, the 4th BufferPool allocation throw
// std::bad_alloc, and any FrameSource report frame 4 as bad. Injection
// points in the tree:
//
//     "source" - FrameSource::Pull, keyed by the pull's frame index
//     "read"   - BbvFileSource's decoder, keyed by frame index
//     "alloc"  - BufferPool::AcquireImage/AcquireBitmap, keyed by a
//                process-wide acquisition counter (NextCount)
//     "write"  - common::AtomicWriteFile (checkpoint/partial/job-record
//                seals), occurrence-keyed; kinds fail / truncate (short
//                temp write, never renamed) / corrupt (one flipped byte
//                the loader's checksum must catch)
//     "spawn"  - attackd's worker-subprocess launcher, occurrence-keyed;
//                any kind makes the spawn report failure
//     "spool"  - attackd's job-record loader, occurrence-keyed; kinds
//                fail / truncate / corrupt, applied to the loaded bytes
//
// Frame-keyed points use At(), a pure lookup: the fault fires every time
// that frame index is pulled, on every pass, which is what keeps multi-pass
// consumers (StreamingReconstructor) self-consistent - a frame that is bad
// is bad in every pass. Counter-keyed points consume NextCount() instead.
//
// Enablement: `backbuster --faults <spec>` or the BB_FAULTS environment
// variable (read once at startup for any binary linking this TU).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/status.h"

namespace bb::faultinject {

enum class FaultKind {
  kFail,      // the operation errors outright (I/O error, bad_alloc)
  kTruncate,  // the payload ends early (short read)
  kCorrupt,   // the payload is present but fails integrity checking
};

const char* ToString(FaultKind kind);

// True when a non-empty schedule is installed. The fast path every
// instrumentation site checks first.
bool Enabled();

// Parses `spec` (comma-separated point@key=kind entries; see above) and
// installs it as the process-wide schedule, replacing any previous one.
// An empty spec clears the schedule. On a malformed spec the previous
// schedule is left untouched and the error names the offending entry.
Status Configure(std::string_view spec);

// Removes the schedule; Enabled() becomes false.
void Clear();

// The fault scheduled at (point, key), if any. A pure lookup - nothing is
// consumed, so frame-keyed faults fire identically on every pass.
std::optional<FaultKind> At(std::string_view point, std::int64_t key);

// Returns the current occurrence count for `point` and increments it, for
// injection points with no natural replayable key. Counts survive Clear()
// within a Configure() generation but reset on Configure(), so a schedule
// always starts from occurrence zero.
std::int64_t NextCount(std::string_view point);

// Number of faults fired since the schedule was installed (for smoke checks
// that a schedule actually engaged).
std::uint64_t FiredCount();

}  // namespace bb::faultinject
