// Stage-level observability for the reconstruction pipeline (DESIGN.md
// "Observability").
//
// A process-wide registry of named stage timers and monotonic counters,
// designed so every pipeline run can answer "where did the time go" per
// stage without perturbing the computation it observes:
//   * Zero overhead when disabled. Collection is off by default; a disabled
//     ScopedTimer / AddCounter is a relaxed atomic load and a branch - no
//     clock read, no lock, no allocation.
//   * Observation only. Tracing never feeds back into pipeline state, so
//     outputs are bit-identical with tracing on or off.
//   * Deterministic structure. Stage/counter *names*, call counts, and
//     counter values depend only on the work performed, never on thread
//     scheduling; ToJson(snapshot, /*include_timings=*/false) is therefore
//     bit-identical across runs and thread counts. Wall-clock durations are
//     the one nondeterministic ingredient and are clearly separated so they
//     can be excluded.
//
// Enablement: `backbuster --trace <path>` turns collection on and writes the
// JSON at exit; every other binary (benches, tools, tests) honors the
// BB_TRACE=<path> environment variable, which enables collection at startup
// and dumps the registry to <path> at normal process exit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bb::trace {

// True when collection is on. The fast path every instrumentation site
// checks first.
bool Enabled();

// Turns collection on/off. Already-recorded data is kept (see Reset).
void Enable();
void Disable();

// Drops every recorded stage and counter. Must not be called while a
// ScopedTimer is alive (its registry slot would dangle).
void Reset();

// Monotonic wall-clock seconds from an arbitrary epoch. The single
// sanctioned clock read in the tree (bblint's no-nondeterminism rule bans
// clock reads everywhere else); benches time through this or ScopedTimer.
double MonotonicSeconds();

// Adds `delta` to the named monotonic counter, creating it at zero on first
// use. Counters are uint64 and wrap modulo 2^64 on overflow (unsigned
// arithmetic; never undefined behavior). No-op when disabled.
void AddCounter(std::string_view name, std::uint64_t delta);

// RAII wall-time accumulator for one named stage. Nests freely (inner
// stages are accounted in both their own slot and the enclosing stage's
// elapsed time, like a flat profiler). Thread-safe: concurrent timers on
// the same stage accumulate without tearing.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view stage);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void* slot_ = nullptr;  // registry slot; null when disabled at entry
  double start_seconds_ = 0.0;
};

struct StageStats {
  std::string name;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

// A consistent copy of the registry; stages and counters sorted by name so
// serialization order never depends on insertion (i.e. scheduling) order.
struct Snapshot {
  std::vector<StageStats> stages;
  std::vector<CounterValue> counters;
};
Snapshot Capture();

// RFC 8259 string escaping: backslash, double quote, and control characters
// (U+0000..U+001F as \uXXXX); all other bytes pass through untouched.
std::string EscapeJson(std::string_view s);

// Serializes a snapshot. With include_timings=false every wall-clock-derived
// field is omitted, leaving only names, call counts, and counter values -
// the deterministic skeleton the determinism suite pins across thread
// counts.
std::string ToJson(const Snapshot& snapshot, bool include_timings = true);

// Captures and writes the registry as JSON to `path`. False on I/O failure.
bool WriteJson(const std::string& path);

}  // namespace bb::trace
