#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace bb::trace {

namespace {

struct StageSlot {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

// One mutex guards both maps. Instrumentation is per-frame / per-stage
// granularity (never per-pixel), so contention is negligible next to the
// work being timed; std::map keeps snapshots name-sorted for free and its
// nodes are pointer-stable, which lets ScopedTimer hold a slot across its
// lifetime without re-looking it up.
struct Registry {
  std::mutex mu;
  std::map<std::string, StageSlot, std::less<>> stages;
  std::map<std::string, std::uint64_t, std::less<>> counters;
};

Registry& Reg() {
  static Registry* r = new Registry();  // never destroyed: timers may
  return *r;                            // outlive static-destruction order
}

std::atomic<bool> g_enabled{false};

std::string& EnvTracePath() {
  static std::string* path = new std::string();
  return *path;
}

void WriteEnvTraceAtExit() {
  const std::string& path = EnvTracePath();
  if (!WriteJson(path)) {
    std::fprintf(stderr, "trace: cannot write BB_TRACE file %s\n",
                 path.c_str());
  }
}

// BB_TRACE=<path> enables collection for any binary linking this TU and
// dumps the registry at normal exit - the no-code-changes enablement path
// for benches, tools, and tests.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("BB_TRACE");
    if (env == nullptr || env[0] == '\0') return;
    EnvTracePath() = env;
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(WriteEnvTraceAtExit);
  }
};
EnvInit g_env_init;

void AppendJsonUint(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Enable() { g_enabled.store(true, std::memory_order_relaxed); }

void Disable() { g_enabled.store(false, std::memory_order_relaxed); }

void Reset() {
  Registry& reg = Reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.stages.clear();
  reg.counters.clear();
}

double MonotonicSeconds() {
  // The one sanctioned wall-clock read (see the header and bblint's
  // no-nondeterminism rule). Everything time-derived flows through here.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddCounter(std::string_view name, std::uint64_t delta) {
  if (!Enabled()) return;
  Registry& reg = Reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.counters.find(name);
  if (it == reg.counters.end()) {
    it = reg.counters.emplace(std::string(name), 0).first;
  }
  it->second += delta;  // uint64: wraps modulo 2^64 by definition
}

ScopedTimer::ScopedTimer(std::string_view stage) {
  if (!Enabled()) return;
  Registry& reg = Reg();
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.stages.find(stage);
    if (it == reg.stages.end()) {
      it = reg.stages.emplace(std::string(stage), StageSlot{}).first;
    }
    slot_ = &it->second;
  }
  start_seconds_ = MonotonicSeconds();
}

ScopedTimer::~ScopedTimer() {
  if (slot_ == nullptr) return;
  const double elapsed = MonotonicSeconds() - start_seconds_;
  Registry& reg = Reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  StageSlot& slot = *static_cast<StageSlot*>(slot_);
  if (slot.calls == 0 || elapsed < slot.min_seconds) {
    slot.min_seconds = elapsed;
  }
  if (slot.calls == 0 || elapsed > slot.max_seconds) {
    slot.max_seconds = elapsed;
  }
  ++slot.calls;
  slot.total_seconds += elapsed;
}

Snapshot Capture() {
  Snapshot snap;
  Registry& reg = Reg();
  const std::lock_guard<std::mutex> lock(reg.mu);
  snap.stages.reserve(reg.stages.size());
  for (const auto& [name, slot] : reg.stages) {
    snap.stages.push_back({name, slot.calls, slot.total_seconds,
                           slot.min_seconds, slot.max_seconds});
  }
  snap.counters.reserve(reg.counters.size());
  for (const auto& [name, value] : reg.counters) {
    snap.counters.push_back({name, value});
  }
  return snap;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const Snapshot& snapshot, bool include_timings) {
  std::string out;
  out += "{\n  \"schema\": \"bb.trace.v1\",\n  \"stages\": {";
  bool first = true;
  for (const auto& s : snapshot.stages) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJson(s.name) + "\": {\"calls\": ";
    AppendJsonUint(&out, s.calls);
    if (include_timings) {
      out += ", \"total_ms\": ";
      AppendJsonDouble(&out, s.total_seconds * 1e3);
      out += ", \"mean_ms\": ";
      AppendJsonDouble(&out,
                       s.calls > 0
                           ? s.total_seconds * 1e3 /
                                 static_cast<double>(s.calls)
                           : 0.0);
      out += ", \"min_ms\": ";
      AppendJsonDouble(&out, s.min_seconds * 1e3);
      out += ", \"max_ms\": ";
      AppendJsonDouble(&out, s.max_seconds * 1e3);
    }
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"counters\": {";
  first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJson(c.name) + "\": ";
    AppendJsonUint(&out, c.value);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool WriteJson(const std::string& path) {
  const std::string json = ToJson(Capture(), /*include_timings=*/true);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

}  // namespace bb::trace
